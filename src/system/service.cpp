#include "system/service.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/socket.h"
#include "net/wire.h"

namespace cosmic::sys {

namespace {

/** Status snapshot word layout inside a JobStatus payload. */
constexpr size_t kStatusWords = 5;

void
sendAll(int fd, const uint8_t *data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd, data + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            COSMIC_FATAL("service: send failed: "
                         << std::strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
}

/** Encodes @p progress as a JobStatus frame for @p job_id. */
sys::Message
statusMessage(uint64_t job_id, const JobProgress &progress)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::JobStatus;
    msg.seq = job_id;
    msg.contributors = static_cast<int>(progress.state);
    msg.payload = {static_cast<double>(progress.epochsDone),
                   static_cast<double>(progress.totalEpochs),
                   progress.lastLoss, progress.queueWaitSec,
                   static_cast<double>(progress.iterations)};
    if (!progress.error.empty()) {
        std::vector<double> text;
        msg.offset = net::packText(progress.error, text);
        msg.payload.insert(msg.payload.end(), text.begin(),
                           text.end());
    }
    return msg;
}

/** Decodes a JobStatus frame back into a snapshot. */
JobProgress
decodeStatus(const sys::Message &msg)
{
    if (msg.kind != sys::MsgKind::JobStatus)
        COSMIC_FATAL("service: expected JobStatus, got msgKind "
                     << static_cast<int>(msg.kind));
    if (msg.payload.size() < kStatusWords)
        COSMIC_FATAL("service: short JobStatus payload ("
                     << msg.payload.size() << " words)");
    JobProgress p;
    p.state = static_cast<JobState>(msg.contributors);
    p.epochsDone = static_cast<int>(msg.payload[0]);
    p.totalEpochs = static_cast<int>(msg.payload[1]);
    p.lastLoss = msg.payload[2];
    p.queueWaitSec = msg.payload[3];
    p.iterations = static_cast<uint64_t>(msg.payload[4]);
    if (msg.offset > 0) {
        // The error text rides after the status words; unpackText
        // reads from the payload head, so hand it just the tail.
        sys::Message text;
        text.payload.assign(msg.payload.begin() + kStatusWords,
                            msg.payload.end());
        text.offset = msg.offset;
        p.error = net::unpackText(text);
    }
    return p;
}

bool
terminal(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled ||
           state == JobState::Rejected;
}

} // namespace

/** One accepted connection: fd + write lock (the handler's replies
 *  and a streaming subscription's pushes interleave). */
struct ServiceFrontDoor::Connection
{
    int fd = -1;
    std::mutex writeMu;
    bool closed = false;

    void
    write(const sys::Message &msg)
    {
        std::lock_guard<std::mutex> lock(writeMu);
        if (closed)
            return;
        std::vector<uint8_t> frame;
        net::encodeMessage(msg, net::PayloadKind::F64, frame);
        sendAll(fd, frame.data(), frame.size());
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(writeMu);
        if (!closed) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
            closed = true;
        }
    }
};

ServiceFrontDoor::ServiceFrontDoor(const SchedulerConfig &cfg,
                                   const std::string &endpoint)
    : scheduler_(cfg)
{
    const net::HostPort hp = net::parseHostPort(endpoint);
    listenFd_ = net::listenTcp(hp);
    port_ = net::localPort(listenFd_);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

ServiceFrontDoor::~ServiceFrontDoor() { stop(); }

void
ServiceFrontDoor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        conns.swap(conns_);
        handlers.swap(handlers_);
    }
    for (auto &c : conns)
        c->close();
    for (auto &t : handlers)
        if (t.joinable())
            t.join();
    scheduler_.shutdown();
}

void
ServiceFrontDoor::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed by stop()
        }
        net::setNoDelay(fd);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
            conn->close();
            return;
        }
        conns_.push_back(conn);
        handlers_.emplace_back(
            [this, conn] { handle(std::move(conn)); });
    }
}

void
ServiceFrontDoor::handle(std::shared_ptr<Connection> conn)
{
    std::vector<uint8_t> buf;
    uint8_t chunk[4096];
    for (;;) {
        // Drain complete frames already buffered.
        size_t consumed = 0;
        for (;;) {
            net::WireHeader hdr;
            size_t frame_bytes = 0;
            const net::FrameStatus st =
                net::peekFrame(buf.data() + consumed,
                               buf.size() - consumed, hdr,
                               frame_bytes);
            if (st == net::FrameStatus::NeedMore)
                break;
            if (st == net::FrameStatus::Corrupt) {
                conn->close();
                return;
            }
            sys::Message msg;
            net::decodeMessage(hdr, buf.data() + consumed, msg,
                               nullptr);
            consumed += frame_bytes;

            switch (msg.kind) {
            case sys::MsgKind::SubmitJob: {
                JobSpec spec;
                uint64_t id = 0;
                try {
                    spec = JobSpec::fromText(net::unpackText(msg));
                    id = scheduler_.submit(std::move(spec));
                    conn->write(
                        statusMessage(id, scheduler_.progress(id)));
                } catch (const std::exception &e) {
                    // A malformed spec never reaches the scheduler;
                    // ack with a Rejected snapshot (id 0).
                    JobProgress p;
                    p.state = JobState::Rejected;
                    p.error = e.what();
                    conn->write(statusMessage(0, p));
                }
                break;
            }
            case sys::MsgKind::JobStatus: {
                auto session = scheduler_.session(msg.seq);
                if (!session) {
                    JobProgress p;
                    p.state = JobState::Rejected;
                    p.error = "unknown job id";
                    conn->write(statusMessage(msg.seq, p));
                    break;
                }
                if (msg.contributors == 1) {
                    // Streaming subscription: push every transition
                    // until terminal. The weak_ptr keeps a dead
                    // connection from holding the session alive.
                    const uint64_t id = msg.seq;
                    std::weak_ptr<Connection> weak = conn;
                    session->setProgressSink(
                        [weak, id](const JobProgress &p) {
                            if (auto c = weak.lock())
                                c->write(statusMessage(id, p));
                        });
                    // The sink only fires on *future* transitions; a
                    // job already terminal would stream nothing, so
                    // always push the current snapshot too.
                    conn->write(
                        statusMessage(id, session->progress()));
                } else {
                    conn->write(statusMessage(
                        msg.seq, session->progress()));
                }
                break;
            }
            case sys::MsgKind::JobResult: {
                auto session = scheduler_.session(msg.seq);
                if (!session) {
                    JobProgress p;
                    p.state = JobState::Rejected;
                    p.error = "unknown job id";
                    conn->write(statusMessage(msg.seq, p));
                    break;
                }
                const JobProgress p = session->progress();
                if (p.state == JobState::Done) {
                    sys::Message reply;
                    reply.kind = sys::MsgKind::JobResult;
                    reply.seq = msg.seq;
                    reply.contributors = static_cast<int>(p.state);
                    reply.payload = session->report().finalModel;
                    conn->write(reply);
                } else {
                    conn->write(statusMessage(msg.seq, p));
                }
                break;
            }
            case sys::MsgKind::CancelJob: {
                scheduler_.cancel(msg.seq);
                auto session = scheduler_.session(msg.seq);
                JobProgress p;
                if (session) {
                    p = session->progress();
                } else {
                    p.state = JobState::Rejected;
                    p.error = "unknown job id";
                }
                conn->write(statusMessage(msg.seq, p));
                break;
            }
            default:
                // Training msgKinds do not belong on a service
                // connection; drop it rather than guess.
                conn->close();
                return;
            }
        }
        if (consumed > 0)
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<long>(consumed));

        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            conn->close();
            return;
        }
        buf.insert(buf.end(), chunk, chunk + n);
    }
}

// ---------------------------------------------------------------------
// ServiceClient

ServiceClient::ServiceClient(const std::string &endpoint)
{
    const net::HostPort hp = net::parseHostPort(endpoint);
    fd_ = net::connectTcpNonBlocking(hp);
    struct pollfd pfd
    {
        fd_, POLLOUT, 0
    };
    const int rc = ::poll(&pfd, 1, 5000);
    if (rc <= 0 || !net::finishConnect(fd_)) {
        ::close(fd_);
        fd_ = -1;
        COSMIC_FATAL("service client: cannot connect to "
                     << endpoint);
    }
    net::setNoDelay(fd_);
    // The conversation is synchronous request/response — clear the
    // O_NONBLOCK the connect helper set and block on replies.
    const int f = ::fcntl(fd_, F_GETFL, 0);
    if (f >= 0)
        ::fcntl(fd_, F_SETFL, f & ~O_NONBLOCK);
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServiceClient::send(const sys::Message &msg)
{
    std::vector<uint8_t> frame;
    net::encodeMessage(msg, net::PayloadKind::F64, frame);
    sendAll(fd_, frame.data(), frame.size());
}

sys::Message
ServiceClient::recv()
{
    uint8_t chunk[4096];
    for (;;) {
        net::WireHeader hdr;
        size_t frame_bytes = 0;
        const net::FrameStatus st = net::peekFrame(
            rxbuf_.data(), rxbuf_.size(), hdr, frame_bytes);
        if (st == net::FrameStatus::Corrupt)
            COSMIC_FATAL("service client: corrupt reply stream");
        if (st == net::FrameStatus::Ready) {
            sys::Message msg;
            net::decodeMessage(hdr, rxbuf_.data(), msg, nullptr);
            rxbuf_.erase(rxbuf_.begin(),
                         rxbuf_.begin() +
                             static_cast<long>(frame_bytes));
            return msg;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            COSMIC_FATAL("service client: connection closed "
                         "mid-reply");
        rxbuf_.insert(rxbuf_.end(), chunk, chunk + n);
    }
}

uint64_t
ServiceClient::submit(const JobSpec &spec, JobProgress *ack)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::SubmitJob;
    msg.offset = net::packText(spec.toText(), msg.payload);
    send(msg);
    const sys::Message reply = recv();
    const JobProgress p = decodeStatus(reply);
    if (ack)
        *ack = p;
    return reply.seq;
}

JobProgress
ServiceClient::status(uint64_t id)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::JobStatus;
    msg.seq = id;
    send(msg);
    return decodeStatus(recv());
}

JobProgress
ServiceClient::wait(
    uint64_t id,
    const std::function<void(const JobProgress &)> &onProgress)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::JobStatus;
    msg.seq = id;
    msg.contributors = 1; // subscribe
    send(msg);
    for (;;) {
        const JobProgress p = decodeStatus(recv());
        if (onProgress)
            onProgress(p);
        if (terminal(p.state))
            return p;
    }
}

JobProgress
ServiceClient::cancel(uint64_t id)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::CancelJob;
    msg.seq = id;
    send(msg);
    return decodeStatus(recv());
}

std::vector<double>
ServiceClient::result(uint64_t id)
{
    sys::Message msg;
    msg.kind = sys::MsgKind::JobResult;
    msg.seq = id;
    send(msg);
    const sys::Message reply = recv();
    if (reply.kind == sys::MsgKind::JobResult)
        return reply.payload;
    const JobProgress p = decodeStatus(reply);
    COSMIC_FATAL("service client: job " << id << " has no result ("
                 << jobStateName(p.state)
                 << (p.error.empty() ? "" : ": " + p.error) << ")");
}

} // namespace cosmic::sys
