/**
 * @file
 * Analytic performance model of the scale-out CoSMIC system.
 *
 * This is the substitution for the paper's physical EC2/local clusters
 * (see DESIGN.md): per-iteration time is assembled from the
 * accelerator's batch time (exact, from the static schedule), the
 * hierarchical Sigma aggregation (network ingest overlapped with
 * CPU aggregation through the circular buffers), the model broadcast
 * down the hierarchy, and fixed per-iteration system costs.
 *
 * All scale-out figures (7, 8, 9, 11, 12, 13, 14) are generated from
 * this model plus the baseline models in src/baselines/.
 */
#pragma once

#include <cstdint>

#include "accel/platform.h"

namespace cosmic::sys {

/** Where one iteration's wall-clock time goes. */
struct IterationBreakdown
{
    /** Partial-update computation (all nodes in parallel). */
    double computeSec = 0.0;
    /** Serialized network transfer (partial updates + broadcast). */
    double networkSec = 0.0;
    /** CPU aggregation time not hidden behind the network. */
    double aggregationSec = 0.0;
    /** Fixed system costs: epoll dispatch, invocation, sync. */
    double overheadSec = 0.0;

    double
    totalSec() const
    {
        return computeSec + networkSec + aggregationSec + overheadSec;
    }
};

/** Knobs of the CoSMIC system-software model. */
struct ClusterModelConfig
{
    int nodes = 4;
    /** 0 = Director default (nodes/4, min 1). */
    int groups = 0;
    accel::HostSpec host;

    /** Multi-threaded CPU summation throughput (aggregation pool). */
    double aggThroughputBytesPerSec = 4.0e9;
    /** Per-flow cost: epoll wakeup, dispatch, socket bookkeeping. */
    double perMessageOverheadSec = 150e-6;
    /** Per-iteration cost: accelerator invocation over PCIe, the
     *  epoll dispatch rounds, and the end-of-iteration barrier. */
    double perIterationOverheadSec = 3e-3;
};

/** Hierarchical-aggregation timing of the CoSMIC runtime. */
class CosmicClusterModel
{
  public:
    /**
     * @param model_bytes Size of one partial update on the wire.
     */
    CosmicClusterModel(const ClusterModelConfig &config,
                       int64_t model_bytes);

    /**
     * One synchronous iteration given each node computes its partial
     * update in @p node_compute_sec.
     */
    IterationBreakdown iteration(double node_compute_sec) const;

    int effectiveGroups() const { return groups_; }
    /** Size of the largest group (nodes, Sigma included). */
    int largestGroup() const;

  private:
    /** Ingest of @p flows updates overlapped with their aggregation. */
    double ingestSec(int flows, double &net_part,
                     double &agg_part) const;

    ClusterModelConfig config_;
    int64_t modelBytes_;
    int groups_;
};

} // namespace cosmic::sys
