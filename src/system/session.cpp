#include "system/session.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "compiler/pipeline.h"
#include "ml/dataset.h"

namespace cosmic::sys {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Preparing:
        return "preparing";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Cancelled:
        return "cancelled";
    case JobState::Rejected:
        return "rejected";
    }
    return "unknown";
}

namespace {

/** Strict numeric parsing: the whole token must be consumed. A front
 *  door that guessed at "4x" or "" would train the wrong cluster. */
int64_t
parseInt(const std::string &key, const std::string &value)
{
    if (value.empty())
        COSMIC_FATAL("job spec: " << key << " needs a value");
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 0);
    if (end != value.c_str() + value.size())
        COSMIC_FATAL("job spec: malformed " << key << " value '"
                     << value << "'");
    return parsed;
}

double
parseDouble(const std::string &key, const std::string &value)
{
    if (value.empty())
        COSMIC_FATAL("job spec: " << key << " needs a value");
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size())
        COSMIC_FATAL("job spec: malformed " << key << " value '"
                     << value << "'");
    return parsed;
}

} // namespace

std::string
JobSpec::toText() const
{
    std::ostringstream out;
    out << "name=" << name << "\n";
    out << "workload=" << workload << "\n";
    out << "scale=" << scale << "\n";
    out << "epochs=" << epochs << "\n";
    out << "nodes=" << cluster.nodes << "\n";
    out << "groups=" << cluster.groups << "\n";
    out << "threads=" << cluster.acceleratorThreadsPerNode << "\n";
    out << "shards=" << cluster.sgdShardsPerNode << "\n";
    out << "minibatch=" << cluster.minibatchPerNode << "\n";
    out << "records=" << cluster.recordsPerNode << "\n";
    out << "lr=" << cluster.learningRate << "\n";
    out << "seed=" << cluster.seed << "\n";
    out << "mode="
        << (cluster.mode == TrainingMode::BatchedGradient ? "batch"
                                                          : "avg")
        << "\n";
    out << "payload="
        << (cluster.transport.payload == net::PayloadKind::Q16
                ? "q16"
                : "f64")
        << "\n";
    out << "deterministic=" << (cluster.aggregation.deterministic ? 1 : 0)
        << "\n";
    out << "overlap=" << (cluster.overlapIterations ? 1 : 0) << "\n";
    out << "staleness=" << cluster.maxStaleness << "\n";
    if (!source.empty())
        out << "---\n" << source;
    return out.str();
}

JobSpec
JobSpec::fromText(const std::string &text)
{
    JobSpec spec;
    spec.workload.clear(); // required key: no silent default program

    // The header ends at the first "---" line; everything after the
    // newline that follows it is the raw DSL source, verbatim.
    std::string header = text;
    const std::string marker = "---\n";
    size_t cut = std::string::npos;
    if (text.rfind(marker, 0) == 0)
        cut = 0;
    else if ((cut = text.find("\n" + marker)) != std::string::npos)
        cut += 1;
    if (cut != std::string::npos) {
        header = text.substr(0, cut);
        spec.source = text.substr(cut + marker.size());
    }

    std::istringstream lines(header);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            COSMIC_FATAL("job spec: malformed line '" << line
                         << "' (expected key=value)");
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        if (key == "name") {
            spec.name = value;
        } else if (key == "workload") {
            spec.workload = value;
        } else if (key == "scale") {
            spec.scale = parseDouble(key, value);
        } else if (key == "epochs") {
            spec.epochs = static_cast<int>(parseInt(key, value));
        } else if (key == "nodes") {
            spec.cluster.nodes = static_cast<int>(parseInt(key, value));
        } else if (key == "groups") {
            spec.cluster.groups =
                static_cast<int>(parseInt(key, value));
        } else if (key == "threads") {
            spec.cluster.acceleratorThreadsPerNode =
                static_cast<int>(parseInt(key, value));
        } else if (key == "shards") {
            spec.cluster.sgdShardsPerNode =
                static_cast<int>(parseInt(key, value));
        } else if (key == "minibatch") {
            spec.cluster.minibatchPerNode = parseInt(key, value);
        } else if (key == "records") {
            spec.cluster.recordsPerNode = parseInt(key, value);
        } else if (key == "lr") {
            spec.cluster.learningRate = parseDouble(key, value);
        } else if (key == "seed") {
            spec.cluster.seed =
                static_cast<uint64_t>(parseInt(key, value));
        } else if (key == "mode") {
            if (value == "avg")
                spec.cluster.mode = TrainingMode::ModelAveraging;
            else if (value == "batch")
                spec.cluster.mode = TrainingMode::BatchedGradient;
            else
                COSMIC_FATAL("job spec: unknown mode '" << value
                             << "' (avg|batch)");
        } else if (key == "payload") {
            if (value == "f64")
                spec.cluster.transport.payload = net::PayloadKind::F64;
            else if (value == "q16")
                spec.cluster.transport.payload = net::PayloadKind::Q16;
            else
                COSMIC_FATAL("job spec: unknown payload '" << value
                             << "' (f64|q16)");
        } else if (key == "deterministic") {
            spec.cluster.aggregation.deterministic =
                parseInt(key, value) != 0;
        } else if (key == "overlap") {
            spec.cluster.overlapIterations = parseInt(key, value) != 0;
        } else if (key == "staleness") {
            spec.cluster.maxStaleness =
                static_cast<int>(parseInt(key, value));
        } else {
            COSMIC_FATAL("job spec: unknown key '" << key << "'");
        }
    }
    if (spec.workload.empty())
        COSMIC_FATAL("job spec: missing required key 'workload'");
    if (spec.epochs <= 0)
        COSMIC_FATAL("job spec: epochs must be positive (got "
                     << spec.epochs << ")");
    if (spec.scale <= 0.0 || !std::isfinite(spec.scale))
        COSMIC_FATAL("job spec: scale must be positive (got "
                     << spec.scale << ")");
    if (spec.name.empty())
        spec.name = spec.workload;
    return spec;
}

Session::Session(JobSpec spec) : spec_(std::move(spec))
{
    if (spec_.name.empty())
        spec_.name = spec_.workload;
    progress_.totalEpochs = spec_.epochs;
}

Session::~Session() = default;

void
Session::setProgressSink(ProgressFn sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
}

void
Session::emit(const JobProgress &snapshot)
{
    ProgressFn sink;
    {
        std::lock_guard<std::mutex> lock(mu_);
        sink = sink_;
    }
    if (sink)
        sink(snapshot);
}

void
Session::transition(JobState state)
{
    JobProgress snapshot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        progress_.state = state;
        snapshot = progress_;
    }
    emit(snapshot);
}

void
Session::prepare()
{
    if (runtime_)
        return;
    transition(JobState::Preparing);
    try {
        const ml::Workload &workload =
            ml::Workload::byName(spec_.workload);
        const std::string source = spec_.source.empty()
                                       ? workload.dslSource(spec_.scale)
                                       : spec_.source;
        // The shared, content-hashed frontend: tenants submitting the
        // same program reuse one compiled artifact.
        frontend_ =
            compile::translateCached(source, spec_.cluster.compile);
        const int64_t expected =
            ml::DatasetGenerator::modelWords(workload, spec_.scale);
        if (frontend_->translation.modelWords != expected)
            COSMIC_FATAL("job '"
                         << spec_.name << "': program trains a "
                         << frontend_->translation.modelWords
                         << "-word model but the dataset descriptor ("
                         << spec_.workload << " @ " << spec_.scale
                         << ") expects " << expected);
        runtime_ = std::make_unique<ClusterRuntime>(
            workload, spec_.scale, spec_.cluster, frontend_);
    } catch (const std::exception &e) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            progress_.state = JobState::Failed;
            progress_.error = e.what();
        }
        emit(progress());
        throw;
    }
}

const TrainingReport &
Session::run()
{
    if (control_.cancel.load()) {
        transition(JobState::Cancelled);
        return report_;
    }
    prepare();
    control_.onEpoch = [this](int epochs_done, double loss,
                              uint64_t iterations) {
        JobProgress snapshot;
        {
            std::lock_guard<std::mutex> lock(mu_);
            progress_.epochsDone = epochs_done;
            progress_.lastLoss = loss;
            progress_.iterations = iterations;
            snapshot = progress_;
        }
        emit(snapshot);
    };
    transition(JobState::Running);
    try {
        report_ = runtime_->train(spec_.epochs, &control_);
    } catch (const std::exception &e) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            progress_.state = JobState::Failed;
            progress_.error = e.what();
        }
        emit(progress());
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        progress_.iterations =
            static_cast<uint64_t>(report_.iterations);
        if (!report_.epochLoss.empty())
            progress_.lastLoss = report_.epochLoss.back();
    }
    transition(report_.cancelled ? JobState::Cancelled
                                 : JobState::Done);
    return report_;
}

void
Session::cancel()
{
    control_.cancel.store(true);
}

JobProgress
Session::progress() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return progress_;
}

const dfg::Translation &
Session::translation() const
{
    COSMIC_ASSERT(frontend_, "Session::translation before prepare()");
    return frontend_->translation;
}

void
Session::setQueueWait(double seconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    progress_.queueWaitSec = seconds;
}

void
Session::reject(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        progress_.state = JobState::Rejected;
        progress_.error = reason;
    }
    emit(progress());
}

} // namespace cosmic::sys
