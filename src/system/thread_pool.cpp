#include "system/thread_pool.h"

#include "common/error.h"

namespace cosmic::sys {

ThreadPool::ThreadPool(int threads)
{
    COSMIC_ASSERT(threads > 0, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        COSMIC_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

uint64_t
ThreadPool::tasksExecuted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(
                lock, [&] { return !queue_.empty() || stopping_; });
            if (queue_.empty()) {
                // Stopping and drained.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            ++executed_;
        }
        idle_.notify_all();
    }
}

} // namespace cosmic::sys
