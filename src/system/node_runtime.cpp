#include "system/node_runtime.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/rng.h"

namespace cosmic::sys {

NodeRuntime::NodeRuntime(const dfg::Translation &translation,
                         const NodeRuntimeConfig &config,
                         TrainingNode &node, net::Transport &transport,
                         AggregationEngine *engine, BufferPool &pool)
    : translation_(translation), config_(config), node_(node),
      transport_(transport), engine_(engine), pool_(pool)
{
}

RecvStatus
NodeRuntime::receiveProtocol(Message &out, double budget_scale,
                             Result &res)
{
    if (!config_.faultsActive)
        return transport_.inbox().receive(out) ? RecvStatus::Ok
                                               : RecvStatus::Closed;
    const FaultToleranceConfig &ft = config_.faultTolerance;
    double window = ft.receiveTimeoutMs * budget_scale;
    for (int attempt = 0;; ++attempt) {
        RecvStatus status = transport_.inbox().receiveFor(out, window);
        if (status != RecvStatus::Timeout)
            return status;
        ++res.recovery.receiveTimeouts;
        if (attempt >= ft.maxRetries)
            return RecvStatus::Timeout;
        window *= ft.backoffFactor;
    }
}

void
NodeRuntime::collectPartials(const NodeAssignment &assign,
                             const std::vector<int> &expected,
                             double budget_scale, Result &res)
{
    AggregationEngine &engine = *engine_;
    std::vector<int> got;
    while (got.size() < expected.size()) {
        Message msg;
        RecvStatus r = receiveProtocol(msg, budget_scale, res);
        COSMIC_ASSERT(r != RecvStatus::Closed,
                      "inbox closed mid-iteration at node "
                          << assign.id);
        if (r == RecvStatus::Timeout)
            break; // give up on whoever is still missing
        const int from = msg.from;
        if (engine.onMessage(std::move(msg))) {
            got.push_back(from);
        } else {
            // Duplicate, stale, or malformed — counted by the engine.
            // Impossible on the no-fault path, where it would be a
            // stack bug.
            COSMIC_ASSERT(config_.faultsActive,
                          "unexpected partial rejected at node "
                              << assign.id << " from " << from);
        }
    }
    for (int sender : expected) {
        if (std::find(got.begin(), got.end(), sender) == got.end()) {
            ++res.recovery.partialsMissed;
            res.suspects.push_back(sender);
        }
    }
}

bool
NodeRuntime::awaitBroadcast(const NodeAssignment &assign, uint64_t seq,
                            Message &bcast, Result &res)
{
    for (;;) {
        // 3x window: a broadcast waiter sits behind the Sigma and
        // master timeout levels, so it must outwait both.
        RecvStatus r = receiveProtocol(bcast, 3.0, res);
        COSMIC_ASSERT(r != RecvStatus::Closed,
                      "inbox closed mid-iteration at node "
                          << assign.id);
        if (r == RecvStatus::Timeout) {
            ++res.recovery.broadcastsMissed;
            if (assign.parent >= 0)
                res.suspects.push_back(assign.parent);
            return false;
        }
        if (bcast.seq != seq) {
            // A delayed broadcast from an earlier round the receiver
            // had already given up on.
            COSMIC_ASSERT(config_.faultsActive,
                          "broadcast seq " << bcast.seq << " != " << seq
                          << " on node " << assign.id);
            ++res.recovery.staleDropped;
            pool_.release(std::move(bcast.payload));
            continue;
        }
        return true;
    }
}

NodeRuntime::Result
NodeRuntime::runRole(const NodeAssignment &assign,
                     const ClusterTopology &topo,
                     const std::vector<double> &model, uint64_t seq,
                     std::vector<double> &new_model)
{
    Result res;
    const int64_t words = translation_.modelWords;
    const int master = topo.masterId();

    if (config_.maxStragglerDelayMs > 0.0) {
        // Deterministic injected skew (failure-injection mode).
        Rng jitter(config_.seed ^
                   (static_cast<uint64_t>(assign.id) << 32) ^ seq);
        auto delay = std::chrono::microseconds(static_cast<int64_t>(
            jitter.uniform(0.0, config_.maxStragglerDelayMs) *
            1000.0));
        std::this_thread::sleep_for(delay);
    }
    auto compute_start = std::chrono::steady_clock::now();
    // Pooled partial-update buffer: filled here, shipped as a
    // message payload (deltas/sigmas) and eventually recycled
    // by whoever consumes it — no steady-state allocation.
    std::vector<double> update = pool_.acquire(words);
    if (config_.mode == TrainingMode::ModelAveraging)
        node_.computeLocalUpdate(model, config_.minibatchPerNode,
                                 update);
    else
        node_.computeGradientSum(model, config_.minibatchPerNode,
                                 update);
    auto compute_end = std::chrono::steady_clock::now();
    res.computeSec =
        std::chrono::duration<double>(compute_end - compute_start)
            .count();

    switch (assign.role) {
      case NodeRole::Delta: {
        // Ship theta_i to the group's Sigma, then wait for the
        // broadcast of the new global model. The received payload
        // goes back to the pool (or becomes the adopted model). If
        // the Sigma died, the broadcast never comes — the bounded
        // wait records the miss and the Director will repair the
        // group once the streak is long enough.
        transport_.send(assign.parent,
                        Message{assign.id, seq, std::move(update)});
        Message bcast;
        if (awaitBroadcast(assign, seq, bcast, res)) {
            if (config_.adoptBroadcast)
                new_model = std::move(bcast.payload);
            else
                pool_.release(std::move(bcast.payload));
        }
        break;
      }
      case NodeRole::GroupSigma: {
        // First level of the hierarchy: aggregate whichever group
        // partials arrive in time (k-of-n).
        auto members = topo.groupMembers(assign.group);
        AggregationEngine &engine = *engine_;
        engine.begin(words, seq);
        collectPartials(assign, members, 1.0, res);
        std::vector<double> sum = engine.finish();
        for (int64_t i = 0; i < words; ++i)
            sum[i] += update[i];
        // Contributor weight rides up the hierarchy so the master
        // can rescale Eq. 3 over the survivors.
        Message up{assign.id, seq, {}, engine.contributors() + 1};
        up.payload = std::move(sum);
        pool_.release(std::move(update));
        transport_.send(master, std::move(up));

        // Wait for the master's broadcast, forward pooled copies to
        // members and recycle (or adopt) the received payload.
        Message bcast;
        if (awaitBroadcast(assign, seq, bcast, res)) {
            for (int member : members) {
                std::vector<double> copy = pool_.acquire(words);
                std::copy(bcast.payload.begin(), bcast.payload.end(),
                          copy.begin());
                transport_.send(
                    member, Message{assign.id, seq, std::move(copy)});
            }
            if (config_.adoptBroadcast)
                new_model = std::move(bcast.payload);
            else
                pool_.release(std::move(bcast.payload));
        }
        break;
      }
      case NodeRole::MasterSigma: {
        // The master folds its own group members and the other group
        // Sigmas into a single order-independent round. 2x window:
        // a group Sigma only reports after its own timeout budget.
        auto members = topo.groupMembers(assign.group);
        auto sigmas = topo.nonMasterSigmas();
        std::vector<int> expected = members;
        expected.insert(expected.end(), sigmas.begin(), sigmas.end());
        AggregationEngine &engine = *engine_;
        engine.begin(words, seq);
        collectPartials(assign, expected, 2.0, res);
        std::vector<double> sum = engine.finish();
        for (int64_t i = 0; i < words; ++i)
            sum[i] += update[i];
        // k-of-n rescaling: the survivors' total weight. With every
        // node healthy this is exactly n and the math is bit-for-bit
        // the no-fault path.
        const int contributors = engine.contributors() + 1;
        pool_.release(std::move(update));
        if (config_.mode == TrainingMode::ModelAveraging) {
            // Eq. 3b: the average of the surviving local updates.
            for (auto &v : sum)
                v /= contributors;
            new_model = std::move(sum);
        } else {
            // Batched GD: one step on the aggregated gradient,
            // normalized per the program's aggregation operator
            // (average over the surviving global batch, or raw sum).
            double divisor =
                translation_.aggregator == dsl::Aggregator::Average
                    ? static_cast<double>(contributors) *
                          config_.minibatchPerNode
                    : 1.0;
            new_model = pool_.acquire(words);
            for (int64_t i = 0; i < words; ++i)
                new_model[i] =
                    model[i] -
                    config_.learningRate * sum[i] / divisor;
            pool_.release(std::move(sum));
        }
        // Q16 mode: quantize the model *at the source*. Every hop of
        // the broadcast re-quantizes idempotently, so the model the
        // master keeps is bit-identical to what every receiver gets —
        // on either transport backend.
        if (config_.payload == net::PayloadKind::Q16)
            net::quantizePayload(new_model);

        // Broadcast pooled copies down the hierarchy.
        for (int sigma : sigmas) {
            std::vector<double> copy = pool_.acquire(words);
            std::copy(new_model.begin(), new_model.end(),
                      copy.begin());
            transport_.send(sigma,
                            Message{assign.id, seq, std::move(copy)});
        }
        for (int member : members) {
            std::vector<double> copy = pool_.acquire(words);
            std::copy(new_model.begin(), new_model.end(),
                      copy.begin());
            transport_.send(member,
                            Message{assign.id, seq, std::move(copy)});
        }
        break;
      }
    }
    // Everything after the gradient compute is aggregation and
    // communication wait — the Fig. 13 breakdown's other half.
    res.aggregationSec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             compute_end)
                             .count();
    return res;
}

} // namespace cosmic::sys
