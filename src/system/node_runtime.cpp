#include "system/node_runtime.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>

#include "common/error.h"
#include "common/rng.h"

namespace cosmic::sys {

StalenessStats &
StalenessStats::operator+=(const StalenessStats &o)
{
    staleComputes += o.staleComputes;
    freshnessWaits += o.freshnessWaits;
    roundsSkipped += o.roundsSkipped;
    stalePartialsAccepted += o.stalePartialsAccepted;
    tooStaleDropped += o.tooStaleDropped;
    maxEpochLag = std::max(maxEpochLag, o.maxEpochLag);
    return *this;
}

NodeRuntime::NodeRuntime(const dfg::Translation &translation,
                         const NodeRuntimeConfig &config,
                         TrainingNode &node, net::Transport &transport,
                         AggregationEngine *engine, BufferPool &pool)
    : translation_(translation), config_(config), node_(node),
      transport_(transport), engine_(engine), pool_(pool)
{
}

RecvStatus
NodeRuntime::receiveProtocol(Message &out, double budget_scale,
                             RecoveryStats &recovery)
{
    if (!config_.faultsActive)
        return transport_.inbox().receive(out) ? RecvStatus::Ok
                                               : RecvStatus::Closed;
    const FaultToleranceConfig &ft = config_.faultTolerance;
    double window = ft.receiveTimeoutMs * budget_scale;
    for (int attempt = 0;; ++attempt) {
        RecvStatus status = transport_.inbox().receiveFor(out, window);
        if (status != RecvStatus::Timeout)
            return status;
        ++recovery.receiveTimeouts;
        if (attempt >= ft.maxRetries)
            return RecvStatus::Timeout;
        window *= ft.backoffFactor;
    }
}

uint64_t
NodeRuntime::minEpochFor(uint64_t seq) const
{
    const uint64_t s = static_cast<uint64_t>(config_.maxStaleness);
    return seq > s ? seq - s : 0;
}

void
NodeRuntime::sendUpdate(int to, int from_id, uint64_t seq,
                        uint64_t epoch, int contributors,
                        std::vector<double> update)
{
    const int64_t words = static_cast<int64_t>(update.size());
    const int64_t chunk = config_.streamChunkWords;
    if (chunk <= 0 || chunk >= words) {
        Message msg{from_id, seq, std::move(update), contributors};
        msg.epoch = epoch;
        transport_.send(to, std::move(msg));
        return;
    }
    // Streaming aggregation: ship the vector as (offset, span) chunks
    // so the receiver's fold pipeline starts consuming while later
    // chunks are still being copied/serialized. Chunk buffers come
    // from (and return to) the shared pool.
    for (int64_t off = 0; off < words; off += chunk) {
        const int64_t span = std::min(chunk, words - off);
        std::vector<double> piece = pool_.acquire(span);
        std::copy(update.begin() + off, update.begin() + off + span,
                  piece.begin());
        Message msg{from_id, seq, std::move(piece), contributors};
        msg.epoch = epoch;
        msg.offset = static_cast<uint32_t>(off);
        transport_.send(to, std::move(msg));
    }
    pool_.release(std::move(update));
}

void
NodeRuntime::collectPartials(const NodeAssignment &assign,
                             const std::vector<int> &expected,
                             double budget_scale, Result &res)
{
    AggregationEngine &engine = *engine_;
    std::vector<int> got;
    while (got.size() < expected.size()) {
        Message msg;
        RecvStatus r =
            receiveProtocol(msg, budget_scale, res.recovery);
        COSMIC_ASSERT(r != RecvStatus::Closed,
                      "inbox closed mid-iteration at node "
                          << assign.id);
        if (r == RecvStatus::Timeout)
            break; // give up on whoever is still missing
        const int from = msg.from;
        if (engine.onMessage(std::move(msg))) {
            // A sender counts once its spans tile the round width —
            // immediately for whole-vector messages, on the last
            // chunk in streaming mode.
            if (engine.senderComplete(from) &&
                std::find(got.begin(), got.end(), from) == got.end())
                got.push_back(from);
        } else {
            // Duplicate, stale, or malformed — counted by the engine.
            // Impossible on the no-fault path, where it would be a
            // stack bug.
            COSMIC_ASSERT(config_.faultsActive,
                          "unexpected partial rejected at node "
                              << assign.id << " from " << from);
        }
    }
    for (int sender : expected) {
        if (std::find(got.begin(), got.end(), sender) == got.end()) {
            ++res.recovery.partialsMissed;
            res.suspects.push_back(sender);
        }
    }
}

bool
NodeRuntime::awaitBroadcast(const NodeAssignment &assign, uint64_t seq,
                            Message &bcast, Result &res)
{
    for (;;) {
        // 3x window: a broadcast waiter sits behind the Sigma and
        // master timeout levels, so it must outwait both.
        RecvStatus r = receiveProtocol(bcast, 3.0, res.recovery);
        COSMIC_ASSERT(r != RecvStatus::Closed,
                      "inbox closed mid-iteration at node "
                          << assign.id);
        if (r == RecvStatus::Timeout) {
            ++res.recovery.broadcastsMissed;
            if (assign.parent >= 0)
                res.suspects.push_back(assign.parent);
            return false;
        }
        if (bcast.seq != seq || bcast.kind != MsgKind::Model) {
            // A delayed broadcast from an earlier round the receiver
            // had already given up on, or a stray non-model frame.
            COSMIC_ASSERT(config_.faultsActive,
                          "broadcast seq " << bcast.seq << " != " << seq
                          << " on node " << assign.id);
            ++res.recovery.staleDropped;
            pool_.release(std::move(bcast.payload));
            continue;
        }
        return true;
    }
}

NodeRuntime::Result
NodeRuntime::runRole(const NodeAssignment &assign,
                     const ClusterTopology &topo,
                     const std::vector<double> &model, uint64_t seq,
                     std::vector<double> &new_model)
{
    Result res;
    const int64_t words = translation_.modelWords;
    const int master = topo.masterId();

    if (config_.maxStragglerDelayMs > 0.0) {
        // Deterministic injected skew (failure-injection mode).
        Rng jitter(config_.seed ^
                   (static_cast<uint64_t>(assign.id) << 32) ^ seq);
        auto delay = std::chrono::microseconds(static_cast<int64_t>(
            jitter.uniform(0.0, config_.maxStragglerDelayMs) *
            1000.0));
        std::this_thread::sleep_for(delay);
    }
    auto compute_start = std::chrono::steady_clock::now();
    // Pooled partial-update buffer: filled here, shipped as a
    // message payload (deltas/sigmas) and eventually recycled
    // by whoever consumes it — no steady-state allocation.
    std::vector<double> update = pool_.acquire(words);
    if (config_.mode == TrainingMode::ModelAveraging)
        node_.computeLocalUpdate(model, config_.minibatchPerNode,
                                 update);
    else
        node_.computeGradientSum(model, config_.minibatchPerNode,
                                 update);
    auto compute_end = std::chrono::steady_clock::now();
    res.computeSec =
        std::chrono::duration<double>(compute_end - compute_start)
            .count();

    switch (assign.role) {
      case NodeRole::Delta: {
        // Ship theta_i to the group's Sigma, then wait for the
        // broadcast of the new global model. The received payload
        // goes back to the pool (or becomes the adopted model). If
        // the Sigma died, the broadcast never comes — the bounded
        // wait records the miss and the Director will repair the
        // group once the streak is long enough. Barrier-mode partials
        // stamp epoch = seq (strict freshness, trivially inside any
        // staleness bound).
        sendUpdate(assign.parent, assign.id, seq, seq, 1,
                   std::move(update));
        Message bcast;
        if (awaitBroadcast(assign, seq, bcast, res)) {
            if (config_.adoptBroadcast)
                new_model = std::move(bcast.payload);
            else
                pool_.release(std::move(bcast.payload));
        }
        break;
      }
      case NodeRole::GroupSigma: {
        // First level of the hierarchy: aggregate whichever group
        // partials arrive in time (k-of-n).
        auto members = topo.groupMembers(assign.group);
        AggregationEngine &engine = *engine_;
        engine.begin(words, seq, minEpochFor(seq));
        collectPartials(assign, members, 1.0, res);
        std::vector<double> sum = engine.finish();
        for (int64_t i = 0; i < words; ++i)
            sum[i] += update[i];
        // Contributor weight rides up the hierarchy so the master
        // can rescale Eq. 3 over the survivors.
        pool_.release(std::move(update));
        sendUpdate(master, assign.id, seq, seq,
                   engine.contributors() + 1, std::move(sum));

        // Wait for the master's broadcast, forward pooled copies to
        // members and recycle (or adopt) the received payload.
        Message bcast;
        if (awaitBroadcast(assign, seq, bcast, res)) {
            for (int member : members) {
                std::vector<double> copy = pool_.acquire(words);
                std::copy(bcast.payload.begin(), bcast.payload.end(),
                          copy.begin());
                Message fwd{assign.id, seq, std::move(copy)};
                fwd.kind = MsgKind::Model;
                fwd.epoch = bcast.epoch;
                transport_.send(member, std::move(fwd));
            }
            if (config_.adoptBroadcast)
                new_model = std::move(bcast.payload);
            else
                pool_.release(std::move(bcast.payload));
        }
        break;
      }
      case NodeRole::MasterSigma: {
        // The master folds its own group members and the other group
        // Sigmas into a single order-independent round. 2x window:
        // a group Sigma only reports after its own timeout budget.
        auto members = topo.groupMembers(assign.group);
        auto sigmas = topo.nonMasterSigmas();
        std::vector<int> expected = members;
        expected.insert(expected.end(), sigmas.begin(), sigmas.end());
        AggregationEngine &engine = *engine_;
        engine.begin(words, seq, minEpochFor(seq));
        collectPartials(assign, expected, 2.0, res);
        std::vector<double> sum = engine.finish();
        for (int64_t i = 0; i < words; ++i)
            sum[i] += update[i];
        // k-of-n rescaling: the survivors' total weight. With every
        // node healthy this is exactly n and the math is bit-for-bit
        // the no-fault path.
        const int contributors = engine.contributors() + 1;
        pool_.release(std::move(update));
        if (config_.mode == TrainingMode::ModelAveraging) {
            // Eq. 3b: the average of the surviving local updates.
            for (auto &v : sum)
                v /= contributors;
            new_model = std::move(sum);
        } else {
            // Batched GD: one step on the aggregated gradient,
            // normalized per the program's aggregation operator
            // (average over the surviving global batch, or raw sum).
            double divisor =
                translation_.aggregator == dsl::Aggregator::Average
                    ? static_cast<double>(contributors) *
                          config_.minibatchPerNode
                    : 1.0;
            new_model = pool_.acquire(words);
            for (int64_t i = 0; i < words; ++i)
                new_model[i] =
                    model[i] -
                    config_.learningRate * sum[i] / divisor;
            pool_.release(std::move(sum));
        }
        // Q16 mode: quantize the model *at the source*. Every hop of
        // the broadcast re-quantizes idempotently, so the model the
        // master keeps is bit-identical to what every receiver gets —
        // on either transport backend.
        if (config_.payload == net::PayloadKind::Q16)
            net::quantizePayload(new_model);

        // Broadcast pooled copies down the hierarchy. Round seq's
        // product *is* the epoch-(seq+1) model (the initial model is
        // epoch 0).
        for (int sigma : sigmas) {
            std::vector<double> copy = pool_.acquire(words);
            std::copy(new_model.begin(), new_model.end(),
                      copy.begin());
            Message msg{assign.id, seq, std::move(copy)};
            msg.kind = MsgKind::Model;
            msg.epoch = seq + 1;
            transport_.send(sigma, std::move(msg));
        }
        for (int member : members) {
            std::vector<double> copy = pool_.acquire(words);
            std::copy(new_model.begin(), new_model.end(),
                      copy.begin());
            Message msg{assign.id, seq, std::move(copy)};
            msg.kind = MsgKind::Model;
            msg.epoch = seq + 1;
            transport_.send(member, std::move(msg));
        }
        break;
      }
    }
    // Everything after the gradient compute is aggregation and
    // communication wait — the Fig. 13 breakdown's other half.
    res.aggregationSec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             compute_end)
                             .count();
    return res;
}

NodeRuntime::PipelineResult
NodeRuntime::runPipelined(const NodeAssignment &assign,
                          const ClusterTopology &topo,
                          const std::vector<double> &model0,
                          uint64_t rounds, PipelineSink &sink)
{
    PipelineResult res;
    const int64_t words = translation_.modelWords;
    const int master = topo.masterId();
    const bool isMaster = assign.role == NodeRole::MasterSigma;
    const uint64_t stale_budget =
        static_cast<uint64_t>(config_.maxStaleness);

    // The node's private model snapshot and its epoch (initial model
    // is epoch 0). Unlike the barrier protocol — where in-process
    // nodes share the master's buffer by reference — every pipelined
    // node owns an adopted broadcast copy; the copies are bit-equal
    // (F64 verbatim, Q16 idempotently re-quantized), so the math is
    // unchanged.
    std::vector<double> model = pool_.acquire(words);
    std::copy(model0.begin(), model0.end(), model.begin());
    uint64_t epoch = 0;

    // Partials that arrived ahead of the round this node's loop is on
    // (a fast peer inside the staleness window) — parked until their
    // round's engine is armed.
    std::deque<Message> stash;

    const auto members = topo.groupMembers(assign.group);
    const auto sigmas = topo.nonMasterSigmas();
    std::vector<int> expected;
    if (assign.role != NodeRole::Delta) {
        expected = members;
        if (isMaster)
            expected.insert(expected.end(), sigmas.begin(),
                            sigmas.end());
    }

    // Routes one received message: partial updates park in the stash,
    // a fresher model broadcast is adopted (and, on a GroupSigma,
    // relayed down to the group first — the broadcast tree), an older
    // model is a reordered duplicate and is recycled.
    auto classify = [&](Message &&m) {
        if (m.kind == MsgKind::Update) {
            stash.push_back(std::move(m));
            return;
        }
        if (m.epoch > epoch) {
            if (assign.role == NodeRole::GroupSigma) {
                for (int member : members) {
                    std::vector<double> copy = pool_.acquire(words);
                    std::copy(m.payload.begin(), m.payload.end(),
                              copy.begin());
                    Message fwd{assign.id, m.seq, std::move(copy)};
                    fwd.kind = MsgKind::Model;
                    fwd.epoch = m.epoch;
                    transport_.send(member, std::move(fwd));
                }
            }
            epoch = m.epoch;
            std::swap(model, m.payload);
        } else {
            // In-order channels deliver models with increasing epochs;
            // an older one only exists under delay/duplicate faults.
            COSMIC_ASSERT(config_.faultsActive,
                          "stale model epoch " << m.epoch
                              << " at node " << assign.id);
            ++res.recovery.staleDropped;
        }
        pool_.release(std::move(m.payload));
    };

    for (uint64_t seq = 0; seq < rounds; ++seq) {
        const auto round_start = std::chrono::steady_clock::now();
        // Opportunistic drain: adopt whatever arrived while this node
        // was computing the previous round, park early partials.
        {
            Message m;
            while (transport_.inbox().tryReceive(m))
                classify(std::move(m));
        }
        // Freshness gate: round seq computes from a model no staler
        // than maxStaleness epochs (epoch >= seq - S). With S = 0 the
        // gate blocks for exactly the round-(seq-1) broadcast — the
        // synchronous pipeline, bit-exact with the barrier protocol.
        // The master never blocks here: its own production advanced
        // its epoch to seq at the end of round seq-1.
        bool skipped = false;
        if (epoch + stale_budget < seq) {
            ++res.staleness.freshnessWaits;
            while (epoch + stale_budget < seq) {
                Message m;
                RecvStatus r = receiveProtocol(m, 3.0, res.recovery);
                COSMIC_ASSERT(r != RecvStatus::Closed,
                              "inbox closed mid-pipeline at node "
                                  << assign.id);
                if (r == RecvStatus::Timeout) {
                    // No fresh-enough model in the whole timeout
                    // budget (fault mode): skip the round rather than
                    // compute something the staleness bound would
                    // reject anyway.
                    ++res.recovery.broadcastsMissed;
                    ++res.staleness.roundsSkipped;
                    skipped = true;
                    break;
                }
                classify(std::move(m));
            }
        }
        if (skipped) {
            const double waited =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - round_start)
                    .count();
            sink.onRound(assign.id, seq, 0.0, waited, 0);
            continue;
        }
        if (epoch < seq) {
            ++res.staleness.staleComputes;
            res.staleness.maxEpochLag =
                std::max(res.staleness.maxEpochLag, seq - epoch);
        }
        if (config_.maxStragglerDelayMs > 0.0) {
            Rng jitter(config_.seed ^
                       (static_cast<uint64_t>(assign.id) << 32) ^ seq);
            auto delay =
                std::chrono::microseconds(static_cast<int64_t>(
                    jitter.uniform(0.0, config_.maxStragglerDelayMs) *
                    1000.0));
            std::this_thread::sleep_for(delay);
        }
        const uint64_t used_epoch = epoch;
        const auto compute_start = std::chrono::steady_clock::now();
        const int64_t records_before = node_.recordsProcessed();
        std::vector<double> update = pool_.acquire(words);
        if (config_.mode == TrainingMode::ModelAveraging)
            node_.computeLocalUpdate(model, config_.minibatchPerNode,
                                     update);
        else
            node_.computeGradientSum(model, config_.minibatchPerNode,
                                     update);
        const auto compute_end = std::chrono::steady_clock::now();
        const double compute_sec =
            std::chrono::duration<double>(compute_end - compute_start)
                .count();
        const int64_t records =
            node_.recordsProcessed() - records_before;

        switch (assign.role) {
          case NodeRole::Delta:
            // Fire and forget: the next round's gate (not a broadcast
            // wait) is where this node re-synchronizes.
            sendUpdate(assign.parent, assign.id, seq, used_epoch, 1,
                       std::move(update));
            break;
          case NodeRole::GroupSigma:
          case NodeRole::MasterSigma: {
            AggregationEngine &engine = *engine_;
            engine.begin(words, seq, minEpochFor(seq));
            // Feed parked partials. Entries for earlier rounds (only
            // possible in fault mode, after a skipped/abandoned
            // round) are deliberately run through the engine so its
            // reconciliation counts and recycles them.
            for (auto it = stash.begin(); it != stash.end();) {
                if (it->seq <= seq) {
                    engine.onMessage(std::move(*it));
                    it = stash.erase(it);
                } else {
                    ++it;
                }
            }
            size_t done = 0;
            for (int from : expected)
                done += engine.senderComplete(from) ? 1 : 0;
            // 2x window at the master: a group Sigma only reports
            // after its own timeout budget (same tiering as the
            // barrier protocol).
            const double budget = isMaster ? 2.0 : 1.0;
            while (done < expected.size()) {
                Message m;
                RecvStatus r = receiveProtocol(m, budget, res.recovery);
                COSMIC_ASSERT(r != RecvStatus::Closed,
                              "inbox closed mid-pipeline at node "
                                  << assign.id);
                if (r == RecvStatus::Timeout) {
                    for (int from : expected)
                        if (!engine.senderComplete(from))
                            ++res.recovery.partialsMissed;
                    break; // k-of-n: fold whoever made it
                }
                if (m.kind == MsgKind::Model || m.seq > seq) {
                    classify(std::move(m));
                    continue;
                }
                const int from = m.from;
                if (engine.onMessage(std::move(m))) {
                    if (engine.senderComplete(from) &&
                        std::find(expected.begin(), expected.end(),
                                  from) != expected.end())
                        ++done;
                } else {
                    COSMIC_ASSERT(
                        config_.faultsActive,
                        "unexpected partial rejected at node "
                            << assign.id << " from " << from);
                }
            }
            std::vector<double> sum = engine.finish();
            for (int64_t i = 0; i < words; ++i)
                sum[i] += update[i];
            const int contributors = engine.contributors() + 1;
            pool_.release(std::move(update));
            if (!isMaster) {
                // The group's effective epoch is the oldest model any
                // folded-in partial was computed from — the master's
                // staleness gate sees through the hierarchy.
                const uint64_t agg_epoch =
                    std::min(used_epoch, engine.minEpochAccepted());
                sendUpdate(master, assign.id, seq, agg_epoch,
                           contributors, std::move(sum));
                break;
            }
            // Master: produce the round's model exactly as the
            // barrier protocol does (Eq. 3b average or one batched
            // step), quantize at the source in Q16 mode, broadcast
            // epoch seq+1 down the hierarchy, and adopt it.
            std::vector<double> next;
            if (config_.mode == TrainingMode::ModelAveraging) {
                for (auto &v : sum)
                    v /= contributors;
                next = std::move(sum);
            } else {
                double divisor =
                    translation_.aggregator == dsl::Aggregator::Average
                        ? static_cast<double>(contributors) *
                              config_.minibatchPerNode
                        : 1.0;
                next = pool_.acquire(words);
                for (int64_t i = 0; i < words; ++i)
                    next[i] = model[i] -
                              config_.learningRate * sum[i] / divisor;
                pool_.release(std::move(sum));
            }
            if (config_.payload == net::PayloadKind::Q16)
                net::quantizePayload(next);
            for (int sigma : sigmas) {
                std::vector<double> copy = pool_.acquire(words);
                std::copy(next.begin(), next.end(), copy.begin());
                Message msg{assign.id, seq, std::move(copy)};
                msg.kind = MsgKind::Model;
                msg.epoch = seq + 1;
                transport_.send(sigma, std::move(msg));
            }
            for (int member : members) {
                std::vector<double> copy = pool_.acquire(words);
                std::copy(next.begin(), next.end(), copy.begin());
                Message msg{assign.id, seq, std::move(copy)};
                msg.kind = MsgKind::Model;
                msg.epoch = seq + 1;
                transport_.send(member, std::move(msg));
            }
            pool_.release(std::move(model));
            model = std::move(next);
            epoch = seq + 1;
            std::vector<double> out = pool_.acquire(words);
            std::copy(model.begin(), model.end(), out.begin());
            sink.onModel(seq, std::move(out));
            break;
          }
        }
        // The round's non-compute time: freshness-gate wait, partial
        // collection, fold, and broadcast — the Fig. 13 breakdown's
        // aggregation half, measured against the whole round.
        const double aggregation_sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - round_start)
                .count() -
            compute_sec;
        sink.onRound(assign.id, seq, compute_sec, aggregation_sec,
                     records);
    }
    // Recycle everything still in flight for this node: the final
    // broadcast no later round will consume, and parked partials of
    // rounds never reached (fault mode).
    {
        Message m;
        while (transport_.inbox().tryReceive(m))
            pool_.release(std::move(m.payload));
    }
    for (auto &m : stash)
        pool_.release(std::move(m.payload));
    stash.clear();
    pool_.release(std::move(model));
    return res;
}

} // namespace cosmic::sys
