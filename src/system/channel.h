/**
 * @file
 * In-process message channels standing in for TCP sockets.
 *
 * The paper's nodes exchange partial updates over commodity TCP/IP; our
 * single-process cluster exchanges them over bounded-unbounded MPSC
 * channels with the same blocking semantics. A node's inbox Channel is
 * what the Sigma node's Incoming Network Handler "epolls": receive()
 * blocks until a message (or close) arrives, pending() is the readiness
 * probe.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace cosmic::sys {

/** One network message: a partial update (or broadcast model). */
struct Message
{
    /** Sending node id. */
    int from = -1;
    /** Iteration sequence number (guards against phase mixing). */
    uint64_t seq = 0;
    /** Flattened vector payload (model or partial update). */
    std::vector<double> payload;
};

/** Thread-safe multi-producer single-consumer message queue. */
class Channel
{
  public:
    /** Enqueues a message; never blocks (the switch buffers). */
    void send(Message msg);

    /**
     * Dequeues the next message, blocking until one is available.
     * @return false when the channel is closed and drained.
     */
    bool receive(Message &out);

    /** Non-blocking receive. */
    bool tryReceive(Message &out);

    /** True when a message is waiting (the epoll readiness analog). */
    bool pending() const;

    /** Closes the channel; receivers drain and then get false. */
    void close();

  private:
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<Message> queue_;
    bool closed_ = false;
};

} // namespace cosmic::sys
