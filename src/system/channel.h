/**
 * @file
 * In-process message channels standing in for TCP sockets.
 *
 * The paper's nodes exchange partial updates over commodity TCP/IP; our
 * single-process cluster exchanges them over bounded-unbounded MPSC
 * channels with the same blocking semantics. A node's inbox Channel is
 * what the Sigma node's Incoming Network Handler "epolls": receive()
 * blocks until a message (or close) arrives, pending() is the readiness
 * probe, and receiveFor() is the timed variant the failure-tolerant
 * protocol uses so a lost message can never block a receiver forever.
 *
 * Close/drain ordering contract (regression-tested in
 * test_system_primitives.cpp):
 *  - Messages sent *before* close() remain receivable: receivers drain
 *    the queue and only then observe the closed state.
 *  - Messages sent *after* close() are dropped — the socket is gone,
 *    so the wire eats them. Producers therefore need no shutdown
 *    handshake; closing the inbox is always safe.
 *  - On a closed-and-drained channel receive() returns false and
 *    receiveFor() returns RecvStatus::Closed immediately; neither can
 *    block (the original receive() would park forever on a channel
 *    that was never closed — receiveFor() is the bounded alternative).
 *
 * Fault injection happens one layer up, at the transport seam
 * (net::Transport::faultCopies), so drop/delay/duplicate chaos applies
 * identically to the in-process and TCP backends. The Channel itself
 * is a plain queue.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace cosmic::sys {

/** What a message's payload means to the receiver. The barrier
 *  protocol could tell the two apart by phase; the pipelined protocol
 *  interleaves them on one inbox, so the kind must ride the wire.
 *
 *  Kinds 2-5 are the front-door service protocol (client <-> cosmicd
 *  --serve): they never appear on the node-to-node aggregation mesh,
 *  but they share the frame format so one wire layer carries both. */
enum class MsgKind : uint8_t
{
    /** A partial update flowing *up* the Sigma tree. */
    Update = 0,
    /** A model broadcast flowing *down* the Sigma tree. */
    Model = 1,
    /** Client -> front door: a job spec (DSL program + dataset
     *  descriptor) packed as text in the payload words. */
    SubmitJob = 2,
    /** Front door -> client: one job's state/progress snapshot
     *  (also a client -> front door poll when the payload is empty). */
    JobStatus = 3,
    /** Front door -> client: a finished job's final model. */
    JobResult = 4,
    /** Client -> front door: cancel the job in `seq`. */
    CancelJob = 5,
};

/** One network message: a partial update (or broadcast model). */
struct Message
{
    /** Sending node id. */
    int from = -1;
    /** Iteration sequence number (guards against phase mixing). */
    uint64_t seq = 0;
    /** Flattened vector payload (model or partial update). */
    std::vector<double> payload;
    /** Delta nodes folded into this partial update (k-of-n weight). */
    int contributors = 1;
    /** Update vs Model (see MsgKind). */
    MsgKind kind = MsgKind::Update;
    /**
     * Model-epoch bookkeeping for bounded-staleness SGD. On an Update:
     * the epoch of the model the partial was computed from (the
     * aggregator accepts it when `round seq - epoch <= maxStaleness`).
     * On a Model: the epoch the broadcast model *is* — the model
     * produced by round k carries epoch k+1, the initial model is
     * epoch 0. The barrier protocol stamps epoch = seq everywhere,
     * which trivially satisfies any staleness bound.
     */
    uint64_t epoch = 0;
    /**
     * First word of this payload within the round's full vector.
     * Whole-vector messages (the default) use offset 0 with
     * payload.size() == round width; streaming senders split one
     * logical update into several (offset, span) chunk messages.
     */
    uint32_t offset = 0;
};

/** Outcome of a timed receive. */
enum class RecvStatus
{
    /** A message was dequeued. */
    Ok,
    /** The window expired with the channel still open and empty. */
    Timeout,
    /** The channel is closed and drained. */
    Closed,
};

/** Thread-safe multi-producer single-consumer message queue. */
class Channel
{
  public:
    /** Enqueues a message; never blocks (the switch buffers). Dropped
     *  when the channel is closed. */
    void send(Message msg);

    /**
     * Dequeues the next message, blocking until one is available.
     * @return false when the channel is closed and drained.
     */
    bool receive(Message &out);

    /**
     * Timed receive: blocks at most @p timeout_ms for a message.
     * Returns immediately (Closed) on a closed-and-drained channel —
     * a timeout can only mean the channel is still open.
     *
     * The wait is pinned to one absolute deadline computed on entry:
     * spurious wakeups and stray notifies re-enter the wait for the
     * *remaining* time only, so the window can never restart or
     * stretch (regression-tested with a sub-quantum timeout in
     * test_system_primitives.cpp). A non-positive timeout degrades to
     * tryReceive-with-status.
     */
    RecvStatus receiveFor(Message &out, double timeout_ms);

    /** Non-blocking receive. */
    bool tryReceive(Message &out);

    /** True when a message is waiting (the epoll readiness analog). */
    bool pending() const;

    /** Closes the channel; receivers drain and then get false, later
     *  sends are dropped (see the close/drain contract above). */
    void close();

  private:
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<Message> queue_;
    bool closed_ = false;
};

} // namespace cosmic::sys
