/**
 * @file
 * One node's role protocol, factored out of the cluster orchestrator.
 *
 * NodeRuntime is the per-node half of the scale-out system software:
 * given a role assignment and a topology, runRole() executes exactly
 * one node's side of one synchronous iteration — compute the partial
 * update, ship/aggregate it through the Sigma hierarchy over a
 * Transport, and receive the master's model broadcast. It is the same
 * code whether the node lives on a ClusterRuntime worker thread
 * (in-process fabric, N roles per process) or inside a `cosmicd`
 * process (TCP fabric, one role per OS process) — which is what makes
 * the two deployments bit-identical.
 *
 * The failure-tolerant protocol (timed receives with retry/backoff,
 * k-of-n aggregation, suspect reports) lives here too; with faults
 * inactive every receive is the original blocking call and the math
 * is the bit-exact no-fault path.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/translator.h"
#include "net/transport.h"
#include "system/aggregation.h"
#include "system/buffer_pool.h"
#include "system/channel.h"
#include "system/director.h"
#include "system/fault.h"
#include "system/training_node.h"

namespace cosmic::sys {

/** Which parallel-SGD variant the cluster runs (paper Sec. 2.2). */
enum class TrainingMode
{
    /** Parallelized SGD [Zinkevich et al.]: each node runs local SGD
     *  and the Sigma hierarchy averages the models (Eq. 3). */
    ModelAveraging,
    /** Batched gradient descent [Dekel et al.]: nodes accumulate raw
     *  gradients at the frozen model; the master applies one step on
     *  the aggregate. */
    BatchedGradient,
};

/** Per-node protocol configuration (a slice of ClusterConfig). */
struct NodeRuntimeConfig
{
    TrainingMode mode = TrainingMode::ModelAveraging;
    double learningRate = 0.05;
    int64_t minibatchPerNode = 64;
    /** Deterministic pre-compute skew injection (0 = off). */
    double maxStragglerDelayMs = 0.0;
    uint64_t seed = 0x5eed;
    /** Timeout/retry policy; consulted only when faultsActive. */
    FaultToleranceConfig faultTolerance;
    /** Timed tolerant receives instead of blocking ones. */
    bool faultsActive = false;
    /**
     * Non-master roles copy the received broadcast into new_model
     * instead of discarding it. The in-process runtime leaves this
     * off (the master's model is shared by reference); a cosmicd
     * process needs the broadcast to carry its next iteration.
     */
    bool adoptBroadcast = false;
    /** Wire payload encoding. In Q16 mode the master quantizes the
     *  new model *before* broadcasting, so the model it keeps is
     *  bit-identical to the (idempotently re-quantized) copies every
     *  other node receives. */
    net::PayloadKind payload = net::PayloadKind::F64;
    /**
     * Bounded-staleness window for the pipelined protocol: a node may
     * compute round k from a model up to this many epochs old, and a
     * Sigma accepts partials lagging by at most this much. 0 keeps
     * strict freshness (the synchronous pipeline — bit-exact with the
     * barrier protocol).
     */
    int maxStaleness = 0;
    /**
     * Streaming aggregation: split each partial update into
     * (offset, span) chunks of this many words so partial sums flow
     * up the Sigma tree while the rest of the vector is still in
     * flight. 0 (or >= the model width) sends one whole-vector
     * message per round — the original zero-copy path.
     */
    int64_t streamChunkWords = 0;
};

/** Pipelined-mode staleness counters (TrainingReport slice). */
struct StalenessStats
{
    /** Rounds a node computed from a model older than the round. */
    uint64_t staleComputes = 0;
    /** Rounds that blocked waiting for a fresh-enough model. */
    uint64_t freshnessWaits = 0;
    /** Rounds skipped because no fresh-enough model arrived in the
     *  timeout budget (fault mode only). */
    uint64_t roundsSkipped = 0;
    /** Engine: complete partials accepted with a lagging epoch. */
    uint64_t stalePartialsAccepted = 0;
    /** Engine: partials rejected by the staleness bound. */
    uint64_t tooStaleDropped = 0;
    /** Largest (round - model epoch) lag observed anywhere. */
    uint64_t maxEpochLag = 0;

    StalenessStats &operator+=(const StalenessStats &o);
};

/** Executes one node's Sigma/Delta role over a Transport. */
class NodeRuntime
{
  public:
    /** What one iteration of the role reported. */
    struct Result
    {
        /** Partial-update compute time. */
        double computeSec = 0.0;
        /** Post-compute aggregation/communication wait. */
        double aggregationSec = 0.0;
        /** This node's recovery counters for the iteration. */
        RecoveryStats recovery;
        /** Peers this node suspects (missed partials/broadcasts). */
        std::vector<int> suspects;
    };

    /**
     * @param engine The node's aggregation engine; required for Sigma
     *        roles, may be null for a pure Delta.
     */
    NodeRuntime(const dfg::Translation &translation,
                const NodeRuntimeConfig &config, TrainingNode &node,
                net::Transport &transport, AggregationEngine *engine,
                BufferPool &pool);

    /**
     * Runs assignment @p assign's side of iteration @p seq starting
     * from @p model. The master writes the new global model into
     * @p new_model; other roles write it only with adoptBroadcast
     * (leaving it untouched when the broadcast never arrived).
     */
    Result runRole(const NodeAssignment &assign,
                   const ClusterTopology &topo,
                   const std::vector<double> &model, uint64_t seq,
                   std::vector<double> &new_model);

    /** Where the pipelined loop reports per-round results. Methods
     *  are called from the node's worker thread; distinct nodes
     *  report concurrently. */
    class PipelineSink
    {
      public:
        virtual ~PipelineSink() = default;
        /** One node finished (or skipped) round @p seq. */
        virtual void onRound(int node, uint64_t seq,
                             double compute_sec,
                             double aggregation_sec,
                             int64_t records) = 0;
        /** The master produced round @p seq's new global model. */
        virtual void onModel(uint64_t seq,
                             std::vector<double> model) = 0;
    };

    /** What a whole pipelined run reported (totals over rounds). */
    struct PipelineResult
    {
        RecoveryStats recovery;
        StalenessStats staleness;
    };

    /**
     * The pipelined protocol: runs this node's role for @p rounds
     * free-running rounds starting from @p model0 (epoch 0), with no
     * cluster-wide barrier between iterations. Each node starts round
     * k as soon as *it* holds a model no staler than maxStaleness
     * epochs; with maxStaleness = 0 that is exactly the round-(k-1)
     * broadcast and the trajectory is bit-identical to the barrier
     * protocol, while a fast node's compute still overlaps the rest
     * of the cluster's reduction tail.
     */
    PipelineResult runPipelined(const NodeAssignment &assign,
                                const ClusterTopology &topo,
                                const std::vector<double> &model0,
                                uint64_t rounds, PipelineSink &sink);

  private:
    RecvStatus receiveProtocol(Message &out, double budget_scale,
                               RecoveryStats &recovery);
    void collectPartials(const NodeAssignment &assign,
                         const std::vector<int> &expected,
                         double budget_scale, Result &res);
    bool awaitBroadcast(const NodeAssignment &assign, uint64_t seq,
                        Message &bcast, Result &res);
    /** Ships one partial update (whole, or split into streaming
     *  chunks when streamChunkWords is set); consumes @p update. */
    void sendUpdate(int to, int from_id, uint64_t seq, uint64_t epoch,
                    int contributors, std::vector<double> update);
    /** The staleness gate begin() is armed with for round @p seq. */
    uint64_t minEpochFor(uint64_t seq) const;

    const dfg::Translation &translation_;
    NodeRuntimeConfig config_;
    TrainingNode &node_;
    net::Transport &transport_;
    AggregationEngine *engine_;
    BufferPool &pool_;
};

} // namespace cosmic::sys
