/**
 * @file
 * One node's role protocol, factored out of the cluster orchestrator.
 *
 * NodeRuntime is the per-node half of the scale-out system software:
 * given a role assignment and a topology, runRole() executes exactly
 * one node's side of one synchronous iteration — compute the partial
 * update, ship/aggregate it through the Sigma hierarchy over a
 * Transport, and receive the master's model broadcast. It is the same
 * code whether the node lives on a ClusterRuntime worker thread
 * (in-process fabric, N roles per process) or inside a `cosmicd`
 * process (TCP fabric, one role per OS process) — which is what makes
 * the two deployments bit-identical.
 *
 * The failure-tolerant protocol (timed receives with retry/backoff,
 * k-of-n aggregation, suspect reports) lives here too; with faults
 * inactive every receive is the original blocking call and the math
 * is the bit-exact no-fault path.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/translator.h"
#include "net/transport.h"
#include "system/aggregation.h"
#include "system/buffer_pool.h"
#include "system/channel.h"
#include "system/director.h"
#include "system/fault.h"
#include "system/training_node.h"

namespace cosmic::sys {

/** Which parallel-SGD variant the cluster runs (paper Sec. 2.2). */
enum class TrainingMode
{
    /** Parallelized SGD [Zinkevich et al.]: each node runs local SGD
     *  and the Sigma hierarchy averages the models (Eq. 3). */
    ModelAveraging,
    /** Batched gradient descent [Dekel et al.]: nodes accumulate raw
     *  gradients at the frozen model; the master applies one step on
     *  the aggregate. */
    BatchedGradient,
};

/** Per-node protocol configuration (a slice of ClusterConfig). */
struct NodeRuntimeConfig
{
    TrainingMode mode = TrainingMode::ModelAveraging;
    double learningRate = 0.05;
    int64_t minibatchPerNode = 64;
    /** Deterministic pre-compute skew injection (0 = off). */
    double maxStragglerDelayMs = 0.0;
    uint64_t seed = 0x5eed;
    /** Timeout/retry policy; consulted only when faultsActive. */
    FaultToleranceConfig faultTolerance;
    /** Timed tolerant receives instead of blocking ones. */
    bool faultsActive = false;
    /**
     * Non-master roles copy the received broadcast into new_model
     * instead of discarding it. The in-process runtime leaves this
     * off (the master's model is shared by reference); a cosmicd
     * process needs the broadcast to carry its next iteration.
     */
    bool adoptBroadcast = false;
    /** Wire payload encoding. In Q16 mode the master quantizes the
     *  new model *before* broadcasting, so the model it keeps is
     *  bit-identical to the (idempotently re-quantized) copies every
     *  other node receives. */
    net::PayloadKind payload = net::PayloadKind::F64;
};

/** Executes one node's Sigma/Delta role over a Transport. */
class NodeRuntime
{
  public:
    /** What one iteration of the role reported. */
    struct Result
    {
        /** Partial-update compute time. */
        double computeSec = 0.0;
        /** Post-compute aggregation/communication wait. */
        double aggregationSec = 0.0;
        /** This node's recovery counters for the iteration. */
        RecoveryStats recovery;
        /** Peers this node suspects (missed partials/broadcasts). */
        std::vector<int> suspects;
    };

    /**
     * @param engine The node's aggregation engine; required for Sigma
     *        roles, may be null for a pure Delta.
     */
    NodeRuntime(const dfg::Translation &translation,
                const NodeRuntimeConfig &config, TrainingNode &node,
                net::Transport &transport, AggregationEngine *engine,
                BufferPool &pool);

    /**
     * Runs assignment @p assign's side of iteration @p seq starting
     * from @p model. The master writes the new global model into
     * @p new_model; other roles write it only with adoptBroadcast
     * (leaving it untouched when the broadcast never arrived).
     */
    Result runRole(const NodeAssignment &assign,
                   const ClusterTopology &topo,
                   const std::vector<double> &model, uint64_t seq,
                   std::vector<double> &new_model);

  private:
    RecvStatus receiveProtocol(Message &out, double budget_scale,
                               Result &res);
    void collectPartials(const NodeAssignment &assign,
                         const std::vector<int> &expected,
                         double budget_scale, Result &res);
    bool awaitBroadcast(const NodeAssignment &assign, uint64_t seq,
                        Message &bcast, Result &res);

    const dfg::Translation &translation_;
    NodeRuntimeConfig config_;
    TrainingNode &node_;
    net::Transport &transport_;
    AggregationEngine *engine_;
    BufferPool &pool_;
};

} // namespace cosmic::sys
