#include "system/buffer_pool.h"

#include "common/error.h"

namespace cosmic::sys {

std::vector<double>
BufferPool::acquire(int64_t words)
{
    COSMIC_ASSERT(words >= 0, "buffer width must be non-negative");
    std::vector<double> buffer;
    bool fresh = true;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++acquires_;
        if (!free_.empty()) {
            buffer = std::move(free_.back());
            free_.pop_back();
            fresh = buffer.capacity() < static_cast<size_t>(words);
        }
        if (fresh)
            ++allocations_;
    }
    buffer.resize(words);
    return buffer;
}

void
BufferPool::release(std::vector<double> &&buffer)
{
    if (buffer.capacity() == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(buffer));
}

uint64_t
BufferPool::acquires() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return acquires_;
}

uint64_t
BufferPool::allocations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return allocations_;
}

size_t
BufferPool::freeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

} // namespace cosmic::sys
