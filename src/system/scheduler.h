/**
 * @file
 * The scheduler layer: admission control + cluster partitioning.
 *
 * A JobScheduler owns many Sessions (session.h) and decides which of
 * them may train at once on a fixed budget of cluster resources:
 *
 *  - **Node slots.** The scheduler tracks `totalNodes` node slots.
 *    Each job asks for `spec.cluster.nodes`; it is admitted only when
 *    that many slots are free, and holds them until it finishes. The
 *    sum of admitted jobs' node counts never exceeds the budget, so
 *    concurrent tenants train on disjoint node subsets.
 *
 *  - **PE-matrix threads.** With `peThreadsPerNode > 0` the per-node
 *    accelerator fabric is also carved: each tenant's share is
 *    peThreadsPerNode / maxConcurrent threads, applied both to the
 *    runtime (acceleratorThreadsPerNode is clamped to the share) and
 *    to the planner through the forceThreads/forceRowsPerThread seam,
 *    so per-job plans reflect the carved sub-array instead of the
 *    whole fabric.
 *
 * Trajectory safety: training math must stay a pure function of the
 * JobSpec, never of scheduler decisions. Thread counts are only safe
 * to scale because the math depends on sgdShardsPerNode — so submit()
 * pins sgdShardsPerNode to the *requested* thread count before any
 * carving, and forceThreads is a planner-only knob (regression-proved
 * in test_service.cpp: a carved job's trajectory bit-matches its solo
 * run).
 *
 * Policy: strict FIFO with a max-concurrency cap. Only the queue head
 * is ever admitted — a small job never jumps a large one — and at most
 * `maxConcurrent` jobs run at once regardless of free slots. submit()
 * never blocks: jobs that cannot be queued (queue full, impossible
 * resources, invalid config) are Rejected immediately with a reason.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "system/session.h"

namespace cosmic::sys {

/** Resource budget + policy for one scheduler. */
struct SchedulerConfig
{
    /** Cluster node slots shared across concurrent jobs. */
    int totalNodes = 8;
    /** Jobs allowed to train at once. */
    int maxConcurrent = 2;
    /** Jobs allowed to wait beyond the running ones; submissions past
     *  this are Rejected, not queued. */
    int maxQueued = 16;
    /**
     * Per-node PE-matrix thread budget to carve across tenants
     * (0 = leave each job's thread counts alone). Each tenant gets
     * peThreadsPerNode / maxConcurrent threads.
     */
    int peThreadsPerNode = 0;
    /** Rows-per-thread for the pinned planner design point when
     *  carving (forceRowsPerThread). */
    int peRowsPerThread = 8;
};

/** Monotonic counters + instantaneous gauges, all under one lock. */
struct SchedulerStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    /** Deepest the wait queue ever got. */
    size_t peakQueueDepth = 0;
    /** Gauges at the time stats() was called. */
    int runningNow = 0;
    size_t queuedNow = 0;
    int freeNodes = 0;
};

/**
 * Multi-tenant admission + partitioning over a fixed node budget.
 * Thread-safe: submit/cancel/progress/stats may race with the worker
 * pool freely. The destructor shuts down (abandoning queued jobs);
 * call drain() first to let the queue empty.
 */
class JobScheduler
{
  public:
    explicit JobScheduler(SchedulerConfig cfg);
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Submits a job; returns its id immediately (never blocks on
     * training). The returned id is always valid for session()/
     * progress() — rejected jobs get a Session in the Rejected state
     * whose progress().error says why.
     */
    uint64_t submit(JobSpec spec);

    /** The session behind @p id (nullptr for an unknown id). */
    std::shared_ptr<Session> session(uint64_t id) const;

    /** Snapshot of @p id's progress. Throws CosmicError on unknown. */
    JobProgress progress(uint64_t id) const;

    /** Requests cancellation (queued or running). False if unknown. */
    bool cancel(uint64_t id);

    /** Blocks until the queue is empty and nothing is running. */
    void drain();

    /** Stops the worker pool. Running jobs are cancelled and joined;
     *  still-queued jobs are Rejected ("shut down before
     *  admission"). Idempotent. */
    void shutdown();

    SchedulerStats stats() const;
    const SchedulerConfig &config() const { return cfg_; }

  private:
    struct Pending
    {
        uint64_t id = 0;
        std::shared_ptr<Session> session;
        int nodes = 0;
        std::chrono::steady_clock::time_point enqueued;
    };

    void worker();

    SchedulerConfig cfg_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idle_;
    std::deque<Pending> queue_;
    std::unordered_map<uint64_t, std::shared_ptr<Session>> jobs_;
    SchedulerStats stats_;
    int freeNodes_ = 0;
    int running_ = 0;
    uint64_t nextId_ = 1;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace cosmic::sys
