/**
 * @file
 * The bounded circular buffer between networking and aggregation.
 *
 * Paper Sec. 3 / Fig. 2: networking threads copy received partial
 * updates out of the socket in chunks and produce them into a Circular
 * Buffer; aggregation threads consume chunks and fold them into the
 * Aggregation Buffer. The bounded ring keeps memory small while letting
 * communication and computation overlap.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cosmic::sys {

/** One chunk of a partial update in flight. */
struct Chunk
{
    /** Originating node. */
    int sender = -1;
    /** Word offset of this chunk within the full vector. */
    int64_t offset = 0;
    std::vector<double> values;
};

/** Fixed-capacity blocking ring of chunks. */
class CircularBuffer
{
  public:
    /** @param capacity Maximum chunks in flight. */
    explicit CircularBuffer(size_t capacity);

    /** Produces a chunk, blocking while the ring is full. */
    void push(Chunk chunk);

    /**
     * Consumes the oldest chunk, blocking until one is available.
     * @return false once closed and drained.
     */
    bool pop(Chunk &out);

    /** Closes the ring; producers must stop, consumers drain. */
    void close();

    size_t capacity() const { return ring_.size(); }
    size_t size() const;

    /** High-water mark of occupancy (observability for tests). */
    size_t highWater() const;

  private:
    std::vector<Chunk> ring_;
    size_t head_ = 0;
    size_t count_ = 0;
    size_t highWater_ = 0;
    bool closed_ = false;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
};

} // namespace cosmic::sys
