/**
 * @file
 * The bounded circular buffer between networking and aggregation.
 *
 * Paper Sec. 3 / Fig. 2: networking threads hand received partial
 * updates to the ring in chunks and aggregation threads consume chunks
 * and fold them into the Aggregation Buffer. The bounded ring keeps
 * memory small while letting communication and computation overlap.
 *
 * A Chunk is a *reference*, not a copy: it points into a shared
 * payload slot owned by the producer (the AggregationEngine's pooled
 * payload slots), mirroring the paper's design where networking hands
 * the aggregation pool references into the circular buffer rather than
 * duplicating the data. Producing or consuming a chunk therefore never
 * allocates. The slot owner must keep the payload alive until every
 * chunk referencing it has been consumed.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cosmic::sys {

/** One chunk of a partial update in flight (a borrowed span). */
struct Chunk
{
    /** Originating node. */
    int sender = -1;
    /** Word offset of this chunk within the full vector. */
    int64_t offset = 0;
    /** Borrowed pointer into the shared payload (not owned). */
    const double *values = nullptr;
    /** Words in this chunk. */
    int64_t length = 0;
    /** Producer-defined payload slot to credit on consumption, or -1. */
    int32_t slot = -1;
};

/** Fixed-capacity blocking ring of chunks. */
class CircularBuffer
{
  public:
    /** @param capacity Maximum chunks in flight. */
    explicit CircularBuffer(size_t capacity);

    /** Produces a chunk, blocking while the ring is full. */
    void push(Chunk chunk);

    /**
     * Consumes the oldest chunk, blocking until one is available.
     * @return false once closed and drained.
     */
    bool pop(Chunk &out);

    /** Closes the ring; producers must stop, consumers drain. */
    void close();

    size_t capacity() const { return ring_.size(); }
    size_t size() const;

    /** High-water mark of occupancy (observability for tests). */
    size_t highWater() const;

  private:
    std::vector<Chunk> ring_;
    size_t head_ = 0;
    size_t count_ = 0;
    size_t highWater_ = 0;
    bool closed_ = false;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
};

} // namespace cosmic::sys
