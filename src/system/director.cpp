#include "system/director.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace cosmic::sys {

std::string
nodeRoleName(NodeRole role)
{
    switch (role) {
      case NodeRole::MasterSigma: return "master-sigma";
      case NodeRole::GroupSigma: return "group-sigma";
      case NodeRole::Delta: return "delta";
    }
    return "?";
}

std::vector<int>
ClusterTopology::groupMembers(int group) const
{
    std::vector<int> members;
    for (const auto &n : nodes)
        if (n.group == group && n.role == NodeRole::Delta)
            members.push_back(n.id);
    return members;
}

int
ClusterTopology::groupSigma(int group) const
{
    for (const auto &n : nodes)
        if (n.group == group && n.role != NodeRole::Delta)
            return n.id;
    COSMIC_FATAL("group " << group << " has no sigma node");
}

std::vector<int>
ClusterTopology::nonMasterSigmas() const
{
    std::vector<int> sigmas;
    for (const auto &n : nodes)
        if (n.role == NodeRole::GroupSigma)
            sigmas.push_back(n.id);
    return sigmas;
}

int
ClusterTopology::masterId() const
{
    for (const auto &n : nodes)
        if (n.role == NodeRole::MasterSigma)
            return n.id;
    COSMIC_FATAL("cluster has no master sigma");
}

ClusterTopology
SystemDirector::assign(int nodes, int groups)
{
    if (nodes <= 0)
        COSMIC_FATAL("cluster needs at least one node, got " << nodes);
    if (groups <= 0 || groups > nodes)
        COSMIC_FATAL("invalid group count " << groups << " for "
                     << nodes << " nodes");

    ClusterTopology topo;
    topo.groups = groups;
    topo.nodes.resize(nodes);

    // Spread nodes over groups as evenly as possible, in id order, so
    // group g gets the contiguous range [g*base + min(g,extra), ...).
    int base = nodes / groups;
    int extra = nodes % groups;
    int next = 0;
    for (int g = 0; g < groups; ++g) {
        int size = base + (g < extra ? 1 : 0);
        for (int k = 0; k < size; ++k) {
            NodeAssignment &n = topo.nodes[next];
            n.id = next;
            n.group = g;
            if (k == 0) {
                n.role = (g == 0) ? NodeRole::MasterSigma
                                  : NodeRole::GroupSigma;
                n.parent = (g == 0) ? -1 : 0;
            } else {
                n.role = NodeRole::Delta;
                n.parent = topo.groupSigma(g);
            }
            ++next;
        }
    }
    return topo;
}

SystemDirector::Repair
SystemDirector::repair(const ClusterTopology &topology,
                       const std::vector<int> &dead)
{
    const int master = topology.masterId();
    for (int id : dead)
        if (id == master)
            COSMIC_FATAL("master Sigma " << master
                         << " died: master failover is unsupported");

    Repair result;
    auto is_dead = [&](int id) {
        return std::find(dead.begin(), dead.end(), id) != dead.end();
    };
    for (const auto &n : topology.nodes) {
        if (is_dead(n.id))
            ++result.removed;
        else
            result.topology.nodes.push_back(n);
    }
    COSMIC_ASSERT(!result.topology.nodes.empty(),
                  "topology repair removed every node");

    // Groups that lost their Sigma promote their lowest-id surviving
    // Delta (survivors are still in id order); empty groups dissolve.
    std::set<int> groups;
    for (const auto &n : result.topology.nodes)
        groups.insert(n.group);
    for (int g : groups) {
        bool has_sigma = false;
        for (const auto &n : result.topology.nodes)
            if (n.group == g && n.role != NodeRole::Delta)
                has_sigma = true;
        if (has_sigma)
            continue;
        for (auto &n : result.topology.nodes) {
            if (n.group == g && n.role == NodeRole::Delta) {
                n.role = NodeRole::GroupSigma;
                ++result.promotions;
                break;
            }
        }
    }

    // Recompute every parent pointer against the repaired role map.
    for (auto &n : result.topology.nodes) {
        switch (n.role) {
          case NodeRole::MasterSigma: n.parent = -1; break;
          case NodeRole::GroupSigma: n.parent = master; break;
          case NodeRole::Delta:
            n.parent = result.topology.groupSigma(n.group);
            break;
        }
    }
    result.topology.groups = static_cast<int>(groups.size());
    return result;
}

} // namespace cosmic::sys
