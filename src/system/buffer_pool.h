/**
 * @file
 * Pooled payload buffers for the message/aggregation data path.
 *
 * Every partial update, aggregated sum and model broadcast in the
 * cluster is a flattened `std::vector<double>` of the same width, and
 * the hot loop used to construct a fresh one per message per
 * iteration. The pool closes that loop: senders acquire a buffer,
 * move it through a Channel as the Message payload, and whoever
 * consumes the message (an AggregationEngine slot, a broadcast
 * receiver) releases the vector — capacity intact — back to the pool.
 * After the first iteration warms the freelist, the steady-state
 * runtime performs no payload allocation at all; the allocations()
 * counter is the test hook that proves it.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace cosmic::sys {

/** Thread-safe freelist of reusable payload vectors. */
class BufferPool
{
  public:
    /**
     * Returns a vector sized to @p words. Contents are unspecified
     * (stale values from a previous round) — the caller overwrites.
     * Served from the freelist when possible; growth is counted.
     */
    std::vector<double> acquire(int64_t words);

    /** Returns a buffer to the freelist, keeping its capacity. */
    void release(std::vector<double> &&buffer);

    /** Total acquire() calls (observability). */
    uint64_t acquires() const;

    /**
     * Acquires that had to allocate: the freelist was empty or the
     * recycled buffer's capacity was below the requested width. A
     * steady-state hot loop must stop advancing this counter.
     */
    uint64_t allocations() const;

    /** Buffers currently parked in the freelist. */
    size_t freeCount() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::vector<double>> free_;
    uint64_t acquires_ = 0;
    uint64_t allocations_ = 0;
};

} // namespace cosmic::sys
