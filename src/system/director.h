/**
 * @file
 * The System Director: node role assignment and hierarchy.
 *
 * Paper Sec. 4.3: the Director assigns each node a role — Delta nodes
 * compute partial updates; Sigma nodes additionally aggregate for their
 * group; one master Sigma combines the group aggregates and broadcasts
 * the new model. Aggregation is hierarchical so no single Sigma node is
 * overwhelmed.
 *
 * The Director is also the recovery authority: when the runtime's
 * failure detector declares nodes dead, repair() rebuilds the role
 * map around the survivors — a dead Delta shrinks its group, a dead
 * GroupSigma is replaced by promoting the group's lowest-id surviving
 * Delta, and a group with no survivors dissolves. Master failover is
 * out of scope (the master is this process's coordinator); a plan
 * that kills the master is rejected up front.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cosmic::sys {

/** Role of one node in the scale-out system. */
enum class NodeRole
{
    /** Group aggregator that also combines the group aggregates. */
    MasterSigma,
    /** Aggregates the partial updates of its group. */
    GroupSigma,
    /** Computes partial updates only. */
    Delta,
};

std::string nodeRoleName(NodeRole role);

/** One node's assignment. */
struct NodeAssignment
{
    int id = 0;
    NodeRole role = NodeRole::Delta;
    /** Group index this node belongs to. */
    int group = 0;
    /** Node id partial updates are sent to (-1 for the master). */
    int parent = -1;
};

/** The whole cluster's role map. */
struct ClusterTopology
{
    std::vector<NodeAssignment> nodes;
    int groups = 0;

    /** Ids of the member nodes (deltas) of a group, sigma excluded. */
    std::vector<int> groupMembers(int group) const;
    /** Id of the Sigma node of a group. */
    int groupSigma(int group) const;
    /** Ids of all group Sigma nodes except the master. */
    std::vector<int> nonMasterSigmas() const;
    int masterId() const;
};

/** Assigns roles from the system specification. */
class SystemDirector
{
  public:
    /**
     * Partitions @p nodes into @p groups groups, appointing node 0 the
     * master Sigma (it is also group 0's Sigma) and the lowest node id
     * of each other group its group Sigma; remaining nodes are Deltas.
     *
     * @throws CosmicError when groups exceed nodes or either is
     *         non-positive.
     */
    static ClusterTopology assign(int nodes, int groups);

    /** The default grouping used by the paper-style deployments. */
    static int
    defaultGroups(int nodes)
    {
        return nodes >= 8 ? nodes / 4 : 1;
    }

    /** Result of one topology repair. */
    struct Repair
    {
        ClusterTopology topology;
        /** Deltas promoted to GroupSigma. */
        int promotions = 0;
        /** Nodes removed (dead ids actually present in the map). */
        int removed = 0;
    };

    /**
     * Rebuilds the role map with the @p dead nodes removed: groups
     * that lost their Sigma promote their lowest-id surviving Delta,
     * empty groups dissolve, and every parent pointer is recomputed.
     *
     * @throws CosmicError when @p dead includes the master Sigma
     *         (master failover is unsupported) or every node.
     */
    static Repair repair(const ClusterTopology &topology,
                         const std::vector<int> &dead);
};

} // namespace cosmic::sys
