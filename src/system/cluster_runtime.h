/**
 * @file
 * The functional scale-out training runtime.
 *
 * This is the whole CoSMIC system software running in one process: the
 * System Director assigns Sigma/Delta roles, every node runs on its own
 * thread, partial updates travel over channels (the "sockets"), Sigma
 * nodes aggregate through their networking/aggregation thread pools and
 * circular buffers, and the master broadcasts the new model down the
 * hierarchy. Training demonstrably converges — the convergence tests
 * ride on this runtime.
 *
 * Failure tolerance: with a FaultPlan installed (or the tolerant
 * protocol force-enabled) every receive is bounded by a timeout with
 * retry/backoff, Sigma nodes aggregate whichever k of n partials
 * arrive and rescale the Eq. 3 weights by the surviving contributor
 * count, sequence numbers reconcile duplicated and late messages, and
 * nodes that miss enough consecutive rounds are evicted by a
 * Director-driven topology repair (a dead GroupSigma's group promotes
 * a Delta; a dead Delta shrinks its group). With the machinery
 * disabled — the default — every hook is a null check and the
 * trajectory is the original bit-exact math.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "compiler/kernel.h"
#include "dfg/translator.h"
#include "ml/dataset.h"
#include "ml/reference.h"
#include "ml/workloads.h"
#include "net/transport.h"
#include "system/aggregation.h"
#include "system/channel.h"
#include "system/director.h"
#include "system/fault.h"
#include "system/node_runtime.h"
#include "system/thread_pool.h"
#include "system/training_node.h"

namespace cosmic::compile {
struct FrontendArtifact;
}

namespace cosmic::sys {

/** Scale-out training configuration. TrainingMode (ModelAveraging vs
 *  BatchedGradient) lives in node_runtime.h with the per-node
 *  protocol. */
struct ClusterConfig
{
    TrainingMode mode = TrainingMode::ModelAveraging;
    int nodes = 4;
    /** 0 = let the Director pick (nodes/4, min 1). */
    int groups = 0;
    int acceleratorThreadsPerNode = 2;
    /** Local-SGD shards per node (the accelerator's t_max thread
     *  dimension); 0 = one per accelerator thread. Shards beyond the
     *  thread count run in tape lanes. The training math depends only
     *  on this count, never on threads or lane width. */
    int sgdShardsPerNode = 0;
    double learningRate = 0.05;
    /** Mini-batch size b per node per iteration (Eq. 3a). */
    int64_t minibatchPerNode = 64;
    /** Records synthesized per node partition. */
    int64_t recordsPerNode = 256;
    uint64_t seed = 0x5eed;
    AggregationConfig aggregation;

    /**
     * Which fabric carries the messages: the in-process channels
     * (default; bit-exact with the pre-transport runtime) or the TCP
     * backend with the real wire protocol. transport.payload selects
     * the wire encoding (F64 or Q16); runs are bit-identical across
     * backends for either encoding when aggregation.deterministic is
     * set.
     */
    net::TransportConfig transport;

    /** Compile-pipeline options for the workload's DFG (the runtime
     *  builds through compile::translateCached; passes default on). */
    compiler::CompileOptions compile;

    /**
     * Failure/straggler injection: each node sleeps a deterministic
     * pseudo-random amount up to this bound before computing its
     * partial update. Training results must not change — the
     * synchronous aggregation protocol tolerates arbitrary skew — and
     * the tests assert exactly that.
     */
    double maxStragglerDelayMs = 0.0;

    /**
     * Deterministic fault schedule (crashes, link faults,
     * stragglers). A non-empty plan activates the failure-tolerant
     * protocol; an empty plan leaves the runtime on the original
     * bit-exact blocking path unless faultTolerance.enabled forces
     * the tolerant protocol on.
     */
    FaultPlan faultPlan;
    /** Timeout/retry/eviction policy of the tolerant protocol. */
    FaultToleranceConfig faultTolerance;

    /**
     * Pipelined iterations: drop the per-iteration cluster barrier
     * and let every node free-run, gated only by model freshness
     * (NodeRuntime::runPipelined). With maxStaleness = 0 each node
     * still waits for the previous round's broadcast before
     * computing, so the trajectory is bit-identical to the barrier
     * protocol — but epoch-loss evaluation and slow receivers no
     * longer stall the cluster. Required when maxStaleness > 0.
     * Crash-fault plans fall back to the barrier protocol (eviction
     * and topology repair need the iteration boundary).
     */
    bool overlapIterations = false;
    /**
     * Bounded-staleness async SGD: a node may compute round k from a
     * model up to this many epochs old, and Sigma nodes reject
     * partials lagging further than this. 0 = synchronous (exact
     * freshness). A value > 0 without overlapIterations is rejected
     * by validate() — async SGD is a pipelined protocol, so asking
     * for staleness with the pipeline off is a contradiction.
     */
    int maxStaleness = 0;
    /** Streaming aggregation: split partial updates into chunks of
     *  this many words so partial sums flow up the Sigma tree while
     *  the rest of the vector is in flight. 0 = whole-vector
     *  messages (the original zero-copy path). Must not exceed the
     *  workload's model width (checked at runtime construction). */
    int64_t streamChunkWords = 0;

    /**
     * Rejects nonsensical knob combinations with a clear CosmicError
     * instead of letting them silently misbehave: non-positive
     * nodes/threads/batch/record counts, groups exceeding nodes, a
     * non-finite or non-positive learning rate, negative staleness or
     * chunk words, and a staleness budget without pipelined
     * iterations (maxStaleness > 0 requires overlapIterations — a
     * bounded-staleness run *is* a pipelined run, and asking for one
     * while leaving the pipeline off is a contradiction). Called by
     * ClusterRuntime's constructor; model-width-dependent checks
     * (streamChunkWords vs the translation) happen there too.
     */
    void validate() const;
};

/**
 * Cooperative controls a Session threads into a running train() call:
 * `cancel` is checked at every iteration boundary of the barrier loop
 * (the pipelined loop finishes its scheduled rounds — its nodes
 * free-run — but the report is still marked cancelled), and onEpoch
 * fires after each epoch-loss evaluation with the epochs completed so
 * far, the loss, and the iterations executed. Both hooks are
 * observation-only: a run with a null or untouched RunControl is
 * bit-identical to one without.
 */
struct RunControl
{
    std::atomic<bool> cancel{false};
    std::function<void(int epochsDone, double loss,
                       uint64_t iterations)>
        onEpoch;
};

/** Per-iteration performance counters (observability). */
struct IterationStats
{
    /** Slowest node's partial-update compute time. */
    double maxComputeSec = 0.0;
    /** Slowest node's post-compute time: waiting on partial updates,
     *  aggregating, and waiting for the model broadcast. */
    double maxAggregationSec = 0.0;
    /** Cluster-summed gradient-compute seconds. */
    double sumComputeSec = 0.0;
    /** Cluster-summed aggregation/communication-wait seconds. */
    double sumAggregationSec = 0.0;
    /** Training records processed cluster-wide this iteration. */
    int64_t records = 0;
};

/** Result of a training run. */
struct TrainingReport
{
    /** Mean loss on a held-out sample after each epoch (index 0 is the
     *  initial model's loss). */
    std::vector<double> epochLoss;
    std::vector<double> finalModel;
    int iterations = 0;
    /** True when a RunControl cancel stopped the run early. */
    bool cancelled = false;
    ClusterTopology topology;

    /** Wall-clock seconds per iteration (observability). */
    std::vector<double> iterationSeconds;
    /** Slowest node's partial-update compute time per iteration —
     *  with straggler injection this is where the skew shows up. */
    std::vector<double> maxNodeComputeSeconds;
    /** Cluster-wide training throughput per iteration. */
    std::vector<double> recordsPerSecond;
    /** Slowest node's aggregation/communication wait per iteration —
     *  iteration time not spent computing gradients. */
    std::vector<double> aggregationWaitSeconds;
    /** Cluster-summed compute seconds per iteration (the Fig. 13
     *  breakdown's compute half: across all nodes, how much time went
     *  into gradient sweeps this iteration). */
    std::vector<double> computeSecondsTotal;
    /** Cluster-summed aggregation/communication wait per iteration —
     *  the breakdown's other half. In pipelined mode this includes
     *  each node's freshness-gate wait. */
    std::vector<double> aggregationSecondsTotal;

    /** Pipelined-mode staleness counters (all zero under the barrier
     *  protocol and in strict sync overlap with no faults). */
    StalenessStats staleness;

    /** Recovery/injection counters accumulated over the whole run —
     *  a chaos test reconciles these against its FaultPlan. All zero
     *  when no fault fired. */
    RecoveryStats recovery;

    /** Wire counters summed over every node's transport endpoint
     *  (all zero on the in-process fabric). */
    net::NetStats net;
};

/** Orchestrates distributed training of one workload. */
class ClusterRuntime
{
  public:
    /**
     * Builds the cluster: parses and translates the workload's DSL
     * program, synthesizes per-node partitions, and assigns roles.
     *
     * @param scale Dimension scale-down factor for fast runs.
     */
    ClusterRuntime(const ml::Workload &workload, double scale,
                   const ClusterConfig &config);

    /**
     * Session-layer constructor: runs over a caller-owned compiled
     * frontend artifact (from compile::translateCached) instead of
     * compiling internally. This is the PopART-style session/devicex
     * split: the Session owns the compiled artifacts, the runtime is
     * the execution engine over them. The artifact's source must be
     * the workload's program at @p scale (the dataset/reference
     * machinery is descriptor-driven); the delegating constructor
     * above is exactly this with a translateCached call inline.
     */
    ClusterRuntime(
        const ml::Workload &workload, double scale,
        const ClusterConfig &config,
        std::shared_ptr<const compile::FrontendArtifact> frontend);
    ~ClusterRuntime();

    /**
     * Runs @p epochs epochs of parallelized SGD; returns the report.
     * @param control Optional cooperative cancel/progress hooks
     *        (observation-only: a null control changes nothing).
     */
    TrainingReport train(int epochs, RunControl *control = nullptr);

    /** One synchronous iteration over the hierarchy; returns the new
     *  globally aggregated model. Exposed for tests.
     *  @param stats Optional out: the iteration's perf counters. */
    std::vector<double> runIteration(const std::vector<double> &model,
                                     uint64_t seq,
                                     IterationStats *stats = nullptr);

    /** The current role map — repairs replace it between iterations. */
    const ClusterTopology &topology() const { return topology_; }
    const dfg::Translation &translation() const;

    /** The shared payload recycler (test hook: its allocations()
     *  counter must stop advancing once the hot path is warm). */
    const BufferPool &bufferPool() const { return *pool_; }

    /** Recovery/injection counters so far (runtime + engines +
     *  injector merged); all zero when no fault fired. */
    RecoveryStats recovery() const;

    /** Wire counters summed over every node's transport endpoint. */
    net::NetStats netStats() const;

  private:
    /** Builds node @p id's protocol executor from the cluster config
     *  (rebuilt after a repair hands the node a new engine). */
    std::unique_ptr<NodeRuntime> makeNodeRuntime(int id);

    /** The barrier-free training loop (overlapIterations /
     *  maxStaleness): launches every node's free-running pipelined
     *  role and consumes the master's model stream, overlapping
     *  epoch-loss evaluation with the cluster's next rounds. */
    TrainingReport trainPipelined(int epochs, RunControl *control);

    /** Folds the iteration's suspect reports into miss streaks and
     *  evicts nodes past the threshold via Director repair. */
    void applyRepairs();
    ml::Workload workload_;
    double scale_;
    ClusterConfig config_;
    /** The session-owned compiled frontend (translation + report);
     *  shared across sessions by the content-hashed BuildCache. */
    std::shared_ptr<const compile::FrontendArtifact> frontend_;
    ClusterTopology topology_;
    ml::Reference reference_;
    ml::Dataset holdout_;

    /** Shared recycler: every message payload, aggregation buffer and
     *  broadcast copy circulates through this pool, so the steady
     *  state performs no per-message allocation. */
    std::shared_ptr<BufferPool> pool_;

    std::vector<std::unique_ptr<TrainingNode>> nodes_;
    /** One fabric endpoint per node (in-process channels or TCP). */
    std::vector<std::unique_ptr<net::Transport>> transports_;
    /** One aggregation engine per Sigma node (indexed by node id). */
    std::vector<std::unique_ptr<AggregationEngine>> engines_;
    /** The per-node protocol executors (one per node, every role). */
    std::vector<std::unique_ptr<NodeRuntime>> nodeRuntimes_;
    /** Long-lived per-node workers: one pool thread drives each node's
     *  role for the whole run — runIteration only submits tasks and
     *  waits at the iteration barrier, it never spawns threads. */
    std::unique_ptr<ThreadPool> nodeWorkers_;

    /** Per-node perf counters, reused across iterations. */
    std::vector<double> computeSec_;
    std::vector<double> aggregationSec_;

    /** True when the failure-tolerant protocol is active (a fault
     *  plan is installed or the policy is force-enabled). */
    bool faultsActive_ = false;
    /** True when train() runs the pipelined (barrier-free) loop. */
    bool pipelineActive_ = false;
    /** Executes the fault plan; null when inactive. */
    std::unique_ptr<FaultInjector> injector_;
    /** Per-node recovery counters for the current iteration (each
     *  node task writes only its own slot; folded at the barrier). */
    std::vector<RecoveryStats> recoveryScratch_;
    /** Per-node suspect reports for the current iteration. */
    std::vector<std::vector<int>> suspectScratch_;
    /** Consecutive iterations each node has been suspected. */
    std::vector<int> missStreak_;
    /** Counters accumulated across iterations (runtime-side only;
     *  recovery() merges engine and injector counters in). */
    RecoveryStats recovery_;
};

} // namespace cosmic::sys
