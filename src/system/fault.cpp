#include "system/fault.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace cosmic::sys {

FaultPlan &
FaultPlan::crash(int node, uint64_t at_iteration)
{
    crashes_.push_back(CrashFault{node, at_iteration});
    return *this;
}

FaultPlan &
FaultPlan::drop(int from, int to, uint64_t iteration)
{
    links_.push_back(
        LinkFault{LinkFaultKind::Drop, from, to, iteration, 0.0});
    return *this;
}

FaultPlan &
FaultPlan::delay(int from, int to, uint64_t iteration, double delay_ms)
{
    COSMIC_ASSERT(delay_ms >= 0.0, "negative delay");
    links_.push_back(
        LinkFault{LinkFaultKind::Delay, from, to, iteration, delay_ms});
    return *this;
}

FaultPlan &
FaultPlan::duplicate(int from, int to, uint64_t iteration)
{
    links_.push_back(
        LinkFault{LinkFaultKind::Duplicate, from, to, iteration, 0.0});
    return *this;
}

FaultPlan &
FaultPlan::straggle(int node, uint64_t first, uint64_t last,
                    double delay_ms)
{
    COSMIC_ASSERT(first <= last && delay_ms >= 0.0,
                  "bad straggler window");
    stragglers_.push_back(StragglerFault{node, first, last, delay_ms});
    return *this;
}

bool
FaultPlan::crashed(int node, uint64_t iteration) const
{
    for (const auto &c : crashes_)
        if (c.node == node && iteration >= c.atIteration)
            return true;
    return false;
}

double
FaultPlan::stragglerDelayMs(int node, uint64_t iteration) const
{
    double ms = 0.0;
    for (const auto &s : stragglers_)
        if (s.node == node && iteration >= s.firstIteration &&
            iteration <= s.lastIteration)
            ms += s.delayMs;
    return ms;
}

FaultPlan
FaultPlan::randomized(uint64_t seed, int nodes, uint64_t iterations)
{
    COSMIC_ASSERT(nodes >= 2 && iterations >= 2,
                  "randomized plan needs a real cluster");
    Rng rng(seed ^ 0xfa017ULL);
    FaultPlan plan;
    auto iter = [&] {
        return static_cast<uint64_t>(
            rng.integer(1, static_cast<int64_t>(iterations) - 1));
    };
    // Never crash node 0: it is the master Sigma in every Director
    // assignment, and master failover is out of scope (DESIGN.md).
    if (rng.coin(0.5))
        plan.crash(static_cast<int>(rng.integer(1, nodes - 1)),
                   static_cast<uint64_t>(rng.integer(
                       1, std::max<int64_t>(
                              1, static_cast<int64_t>(iterations) / 2))));
    int link_faults = static_cast<int>(rng.integer(1, 3));
    for (int i = 0; i < link_faults; ++i) {
        int from = static_cast<int>(rng.integer(0, nodes - 1));
        int to = static_cast<int>(rng.integer(0, nodes - 1));
        if (to == from)
            to = (to + 1) % nodes;
        switch (rng.integer(0, 2)) {
          case 0: plan.drop(from, to, iter()); break;
          case 1: plan.delay(from, to, iter(), rng.uniform(1.0, 8.0));
                  break;
          default: plan.duplicate(from, to, iter()); break;
        }
    }
    if (rng.coin(0.5)) {
        uint64_t first = iter();
        plan.straggle(static_cast<int>(rng.integer(0, nodes - 1)),
                      first,
                      std::min<uint64_t>(iterations - 1, first + 2),
                      rng.uniform(1.0, 10.0));
    }
    return plan;
}

RecoveryStats &
RecoveryStats::operator+=(const RecoveryStats &o)
{
    receiveTimeouts += o.receiveTimeouts;
    partialsMissed += o.partialsMissed;
    broadcastsMissed += o.broadcastsMissed;
    duplicatesDropped += o.duplicatesDropped;
    staleDropped += o.staleDropped;
    malformedDropped += o.malformedDropped;
    messagesDropped += o.messagesDropped;
    messagesDelayed += o.messagesDelayed;
    messagesDuplicated += o.messagesDuplicated;
    stragglerStalls += o.stragglerStalls;
    nodesEvicted += o.nodesEvicted;
    sigmaPromotions += o.sigmaPromotions;
    topologyRepairs += o.topologyRepairs;
    return *this;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan))
{
    const size_t n = plan_.linkFaults().size();
    if (n > 0) {
        linkFired_ = std::make_unique<std::atomic<bool>[]>(n);
        for (size_t i = 0; i < n; ++i)
            linkFired_[i].store(false, std::memory_order_relaxed);
    }
}

FaultInjector::SendAction
FaultInjector::onSend(int from, int to, uint64_t seq)
{
    SendAction action;
    const auto &links = plan_.linkFaults();
    for (size_t i = 0; i < links.size(); ++i) {
        const LinkFault &f = links[i];
        if (f.iteration != seq)
            continue;
        if (f.from >= 0 && f.from != from)
            continue;
        if (f.to >= 0 && f.to != to)
            continue;
        // Fire-once: the first matching message claims the fault.
        bool expected = false;
        if (!linkFired_[i].compare_exchange_strong(expected, true))
            continue;
        switch (f.kind) {
          case LinkFaultKind::Drop:
            action.drop = true;
            dropped_.fetch_add(1);
            break;
          case LinkFaultKind::Delay:
            action.delayMs += f.delayMs;
            delayed_.fetch_add(1);
            break;
          case LinkFaultKind::Duplicate:
            action.duplicate = true;
            duplicated_.fetch_add(1);
            break;
        }
    }
    return action;
}

double
FaultInjector::stragglerDelayMs(int node, uint64_t seq)
{
    double ms = plan_.stragglerDelayMs(node, seq);
    if (ms > 0.0)
        stalls_.fetch_add(1);
    return ms;
}

} // namespace cosmic::sys
