/**
 * @file
 * The session layer: one tenant's training job behind a stable API.
 *
 * A Session owns everything one job needs and nothing any other job
 * can touch: the job's spec (program + dataset descriptor + cluster
 * shape), its compiled artifacts (the content-hashed BuildCache
 * shares the immutable frontend across tenants that submit the same
 * program), and its training state (the per-session ClusterRuntime
 * execution engine plus the progress snapshot). The split mirrors
 * PopART's Session/devicex design: user-facing prepare/run/progress/
 * cancel up here, device/cluster mechanics in the runtime below.
 *
 * Single-tenant use is a Session wrapped around one ClusterRuntime
 * and is bit-identical to driving the runtime directly — the Session
 * adds observation hooks, never math. Multi-tenant use goes through
 * sys::JobScheduler (scheduler.h), which owns many Sessions and
 * partitions the cluster across them.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "system/cluster_runtime.h"

namespace cosmic::sys {

/** Lifecycle of one training job. */
enum class JobState
{
    /** Accepted, waiting for admission (scheduler queue). */
    Queued,
    /** Compiling the program / building the cluster. */
    Preparing,
    /** Training. */
    Running,
    /** Finished; the report holds the final model. */
    Done,
    /** Compile or runtime error; progress carries the message. */
    Failed,
    /** Cancelled before or during training. */
    Cancelled,
    /** Refused at admission (queue full or impossible resources). */
    Rejected,
};

const char *jobStateName(JobState state);

/**
 * One job's submission: the DSL program, the dataset descriptor, and
 * the cluster shape to train with. The descriptor is a Table 1
 * workload family (it drives synthetic dataset/reference generation
 * and the model layout); `source` optionally ships a client-provided
 * DSL program, which must produce the descriptor's model width —
 * empty means "the descriptor's own program at `scale`".
 */
struct JobSpec
{
    /** Client-facing label (defaults to the workload name). */
    std::string name;
    /** Dataset/reference descriptor: a Table 1 workload name. */
    std::string workload = "stock";
    /** Optional DSL program text (empty = workload's program). */
    std::string source;
    /** Dimension scale-down factor for the descriptor. */
    double scale = 16.0;
    int epochs = 2;
    /** Cluster shape + training knobs for this job's engine. */
    ClusterConfig cluster;

    /**
     * Wire form: `key=value` header lines, then an optional line
     * `---` followed by the raw DSL source to end-of-text (the
     * format SubmitJob frames carry; see DESIGN.md §15).
     */
    std::string toText() const;
    /** Parses toText()'s format. Unknown keys and malformed values
     *  throw CosmicError — a front door must reject, not guess. */
    static JobSpec fromText(const std::string &text);
};

/** A point-in-time snapshot of one job's life. */
struct JobProgress
{
    JobState state = JobState::Queued;
    int epochsDone = 0;
    int totalEpochs = 0;
    /** Latest held-out epoch loss (NaN until the first epoch). */
    double lastLoss = 0.0;
    /** Iterations executed so far. */
    uint64_t iterations = 0;
    /** Submission-to-admission wait (stamped by the scheduler). */
    double queueWaitSec = 0.0;
    /** Failure message when state == Failed. */
    std::string error;
};

/**
 * One job's session: prepare (compile), run (train), progress,
 * cancel. Thread-compatible: run() executes on one thread while
 * progress()/cancel() may be called from any other.
 */
class Session
{
  public:
    using ProgressFn = std::function<void(const JobProgress &)>;

    explicit Session(JobSpec spec);
    ~Session();

    /** Streams every progress transition (state changes and epoch
     *  completions) to @p sink. Install before run(). */
    void setProgressSink(ProgressFn sink);

    /**
     * Compiles the job's program through the shared BuildCache and
     * builds the per-session execution engine. Idempotent. Throws
     * CosmicError (and records Failed) on an unknown descriptor, a
     * program whose model width contradicts the descriptor, or an
     * invalid cluster configuration.
     */
    void prepare();

    /**
     * Trains to completion (prepare()s first if needed); returns the
     * report. Rethrows failures after recording them in progress().
     * A concurrent cancel() stops the barrier loop at the next
     * iteration boundary and marks the report cancelled.
     */
    const TrainingReport &run();

    /** Requests cooperative cancellation (safe from any thread). */
    void cancel();

    /** True once cancel() has been requested (the run may still be
     *  draining toward its next iteration boundary). */
    bool cancelRequested() const { return control_.cancel.load(); }

    JobProgress progress() const;
    const JobSpec &spec() const { return spec_; }

    /** The compiled frontend (valid after prepare()); shared with
     *  every other session that submitted the same program. */
    const dfg::Translation &translation() const;

    /** The finished run's report (valid once run() returned). */
    const TrainingReport &report() const { return report_; }

    /** The job's training engine (valid after prepare()) — topology
     *  introspection; training goes through run(). */
    const ClusterRuntime &runtime() const { return *runtime_; }

    /** Scheduler hook: stamps the queue wait into progress(). */
    void setQueueWait(double seconds);

    /** Scheduler hook: refuses the job at admission with @p reason
     *  (queue full, impossible resources, invalid config). */
    void reject(const std::string &reason);

  private:
    void transition(JobState state);
    void emit(const JobProgress &snapshot);

    JobSpec spec_;
    std::shared_ptr<const compile::FrontendArtifact> frontend_;
    std::unique_ptr<ClusterRuntime> runtime_;
    RunControl control_;
    TrainingReport report_;
    ProgressFn sink_;

    mutable std::mutex mu_;
    JobProgress progress_;
};

} // namespace cosmic::sys
