/**
 * @file
 * One node of the functional scale-out runtime.
 *
 * A TrainingNode owns a partition of the training data and emulates the
 * node of Fig. 1: the "accelerator" is the compiled tape executor
 * running the gradient program over the node's sub-partitions with
 * multiple worker threads, each performing local SGD (Eq. 3a) on its
 * own model copy; the node then aggregates its workers locally and
 * ships the partial update to its Sigma node.
 *
 * The workers are *persistent*, mirroring the paper's internally
 * managed thread pools (Sec. 3): the pool is spawned once in the
 * constructor and mini-batches are fed to it as tasks, so the
 * per-iteration hot path performs no thread spawn/join and no buffer
 * allocation — each worker reuses a preallocated model/gradient
 * buffer and its own TapeExecutor scratch.
 *
 * SGD shards are the software analogue of the accelerator template's
 * t_max thread dimension: the node's local-SGD split is over
 * `sgdShards` independent sub-models, which may exceed the OS thread
 * count. Each pool thread drives its shard group through the tape's
 * multi-lane sweep (one tape pass per record step, one lane per
 * shard), so adding shards costs vector lanes, not threads. The
 * training math depends only on the shard count — never on how shards
 * are packed onto threads or lanes.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dfg/tape.h"
#include "dfg/translator.h"
#include "ml/dataset.h"
#include "system/thread_pool.h"

namespace cosmic::sys {

class FaultInjector;

/** Per-node training configuration. */
struct NodeComputeConfig
{
    /** Worker threads of the node's accelerator. */
    int acceleratorThreads = 2;
    /**
     * Independent local-SGD sub-models (the paper's t_max thread
     * dimension). 0 = one per accelerator thread (the classic
     * configuration). When shards exceed threads, each thread
     * advances its shard group in tape lanes.
     */
    int sgdShards = 0;
    /** SGD learning rate. */
    double learningRate = 0.05;
    /**
     * Compute kernel the node's tape runs (interpreter or JIT native
     * code; see dfg::TapeBackend). Cluster runtimes copy the compile
     * option here so every node in a job picks the same backend.
     */
    dfg::TapeBackend tapeBackend = dfg::TapeBackend::Auto;
};

/** The compute side of one cluster node. */
class TrainingNode
{
  public:
    /**
     * @param translation Compiled gradient program (shared).
     * @param partition The node's slice of the training data (owned).
     */
    TrainingNode(const dfg::Translation &translation,
                 ml::Dataset partition,
                 const NodeComputeConfig &config);

    /**
     * Computes the node's partial update for the next mini-batch into
     * @p update (resized to modelWords; steady state allocation-free
     * when the caller reuses the buffer): each SGD shard runs local
     * SGD over its sub-partition slice starting from @p model, and the
     * shard models are averaged (the accelerator's local aggregation).
     * Advances the node's batch cursor.
     *
     * @param model Current global model.
     * @param batch_records Mini-batch size b for this node.
     * @param update Out: the locally aggregated updated model
     *        (theta_i).
     */
    void computeLocalUpdate(const std::vector<double> &model,
                            int64_t batch_records,
                            std::vector<double> &update);

    /**
     * Batched-gradient variant (the paper's other parallel SGD family,
     * Sec. 2.2): each worker thread accumulates raw per-record
     * gradients at the fixed @p model through the lane-batched tape;
     * the node writes the summed gradient over its batch slice into
     * @p grad instead of an updated model. Advances the same batch
     * cursor.
     */
    void computeGradientSum(const std::vector<double> &model,
                            int64_t batch_records,
                            std::vector<double> &grad);

    const ml::Dataset &partition() const { return partition_; }
    int64_t recordsProcessed() const { return recordsProcessed_; }
    /** Resolved SGD shard count (>= 1). */
    int sgdShards() const { return shards_; }

    /**
     * Installs the fault-injection hook: before each compute call the
     * node asks @p injector for node @p node_id's straggler stall at
     * the node's current iteration and sleeps it off. Null disables
     * (the default; a single pointer check on the hot path). The
     * stall changes wall-clock only — the synchronous aggregation
     * protocol makes the training math independent of skew.
     */
    void
    setFaultInjector(FaultInjector *injector, int node_id)
    {
        injector_ = injector;
        nodeId_ = node_id;
    }

  private:
    /** Serves the injected straggler stall and advances the node's
     *  iteration counter (one tick per compute call). */
    void maybeStall();
    /** Persistent per-thread state, preallocated in the constructor. */
    struct Worker
    {
        /** Executor holds the tape's mutable scratch images. */
        std::unique_ptr<dfg::TapeExecutor> exec;
        /** Gradient accumulator (gradientWords). */
        std::vector<double> grad;
    };

    /** A contiguous run of records within the partition. */
    struct Segment
    {
        const double *records = nullptr;
        int64_t count = 0;
    };

    /**
     * Resolves shard @p s's share of the batch under an @p shard_count
     * way split into at most two contiguous record segments (the
     * wrap-around at the partition boundary), in record order.
     * @return The number of segments written to @p segs.
     */
    int shardSegments(int s, int shard_count, int64_t batch_records,
                      Segment segs[2]) const;

    /** Runs the local-SGD sweeps for shards [s0, s1) on worker @p t. */
    void sweepShardRange(int t, int s0, int s1, int64_t batch_records,
                         const std::vector<double> &model);

    const dfg::Translation &tr_;
    ml::Dataset partition_;
    NodeComputeConfig config_;
    /** Compiled execution schedule, shared by all workers. */
    dfg::Tape tape_;
    std::vector<Worker> workers_;
    /** Per-shard private model copies (modelWords each). */
    std::vector<std::vector<double>> shardModels_;
    int shards_ = 0;
    /** The node's persistent accelerator worker pool. */
    ThreadPool pool_;
    int64_t cursor_ = 0;
    int64_t recordsProcessed_ = 0;
    /** Straggler-injection hook (not owned) and this node's id. */
    FaultInjector *injector_ = nullptr;
    int nodeId_ = -1;
    /** Compute calls served (the iteration clock for the hook). */
    uint64_t iteration_ = 0;
};

} // namespace cosmic::sys
