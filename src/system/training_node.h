/**
 * @file
 * One node of the functional scale-out runtime.
 *
 * A TrainingNode owns a partition of the training data and emulates the
 * node of Fig. 1: the "accelerator" is the compiled tape executor
 * running the gradient program over the node's sub-partitions with
 * multiple worker threads, each performing local SGD (Eq. 3a) on its
 * own model copy; the node then aggregates its workers locally and
 * ships the partial update to its Sigma node.
 *
 * The workers are *persistent*, mirroring the paper's internally
 * managed thread pools (Sec. 3): the pool is spawned once in the
 * constructor and mini-batches are fed to it as tasks, so the
 * per-iteration hot path performs no thread spawn/join and no buffer
 * allocation — each worker reuses a preallocated model/gradient
 * buffer and its own TapeExecutor scratch.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dfg/tape.h"
#include "dfg/translator.h"
#include "ml/dataset.h"
#include "system/thread_pool.h"

namespace cosmic::sys {

/** Per-node training configuration. */
struct NodeComputeConfig
{
    /** Worker threads of the node's accelerator. */
    int acceleratorThreads = 2;
    /** SGD learning rate. */
    double learningRate = 0.05;
};

/** The compute side of one cluster node. */
class TrainingNode
{
  public:
    /**
     * @param translation Compiled gradient program (shared).
     * @param partition The node's slice of the training data (owned).
     */
    TrainingNode(const dfg::Translation &translation,
                 ml::Dataset partition,
                 const NodeComputeConfig &config);

    /**
     * Computes the node's partial update for the next mini-batch: each
     * worker thread runs SGD over its sub-partition slice starting from
     * @p model, and the workers' models are averaged (the accelerator's
     * local aggregation). Advances the node's batch cursor.
     *
     * @param model Current global model.
     * @param batch_records Mini-batch size b for this node.
     * @return The locally aggregated updated model (theta_i).
     */
    std::vector<double>
    computeLocalUpdate(const std::vector<double> &model,
                       int64_t batch_records);

    /**
     * Batched-gradient variant (the paper's other parallel SGD family,
     * Sec. 2.2): each worker thread accumulates raw per-record
     * gradients at the fixed @p model; the node returns the summed
     * gradient over its batch slice instead of an updated model.
     * Advances the same batch cursor.
     */
    std::vector<double>
    computeGradientSum(const std::vector<double> &model,
                       int64_t batch_records);

    const ml::Dataset &partition() const { return partition_; }
    int64_t recordsProcessed() const { return recordsProcessed_; }

  private:
    /** Persistent per-worker state, preallocated in the constructor. */
    struct Worker
    {
        /** Executor holds the tape's mutable scratch image. */
        std::unique_ptr<dfg::TapeExecutor> exec;
        /** Local model copy (modelWords) for SGD sweeps. */
        std::vector<double> model;
        /** Gradient accumulator (gradientWords). */
        std::vector<double> grad;
    };

    /**
     * Invokes @p fn(worker, chunk) on worker @p t's share of the
     * batch, splitting the wrap-around at the partition boundary into
     * at most two contiguous record chunks (in record order).
     */
    template <typename Fn>
    void forWorkerRecords(int t, int64_t batch_records, Fn &&fn);

    const dfg::Translation &tr_;
    ml::Dataset partition_;
    NodeComputeConfig config_;
    /** Compiled execution schedule, shared by all workers. */
    dfg::Tape tape_;
    std::vector<Worker> workers_;
    /** The node's persistent accelerator worker pool. */
    ThreadPool pool_;
    int64_t cursor_ = 0;
    int64_t recordsProcessed_ = 0;
};

} // namespace cosmic::sys
