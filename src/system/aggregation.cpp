#include "system/aggregation.h"

#include <algorithm>
#include <memory>

#include "common/error.h"

namespace cosmic::sys {

AggregationEngine::AggregationEngine(const AggregationConfig &config)
    : config_(config), netPool_(config.networkingThreads),
      aggPool_(config.aggregationThreads), ring_(config.ringCapacity),
      stripes_(64)
{
    COSMIC_ASSERT(config.chunkWords > 0, "chunk size must be positive");
}

AggregationEngine::~AggregationEngine()
{
    ring_.close();
}

void
AggregationEngine::begin(int senders, int64_t words)
{
    COSMIC_ASSERT(senders >= 0 && words > 0, "bad aggregation round");
    aggBuffer_.assign(words, 0.0);
    stripeWords_ = std::max<size_t>(
        config_.chunkWords,
        (words + stripes_.size() - 1) / stripes_.size());
    std::lock_guard<std::mutex> lock(doneMutex_);
    wordsRemaining_ = static_cast<int64_t>(senders) * words;
}

void
AggregationEngine::onMessage(Message msg)
{
    COSMIC_ASSERT(msg.payload.size() == aggBuffer_.size(),
                  "partial update width " << msg.payload.size()
                  << " does not match aggregation buffer "
                  << aggBuffer_.size());
    // Networking pool: copy the "socket" data into the circular buffer
    // chunk by chunk; each produced chunk wakes one aggregation task.
    auto shared = std::make_shared<Message>(std::move(msg));
    netPool_.submit([this, shared] {
        const auto &payload = shared->payload;
        for (size_t off = 0; off < payload.size();
             off += config_.chunkWords) {
            Chunk chunk;
            chunk.sender = shared->from;
            chunk.offset = static_cast<int64_t>(off);
            size_t n = std::min(config_.chunkWords,
                                payload.size() - off);
            chunk.values.assign(payload.begin() + off,
                                payload.begin() + off + n);
            ring_.push(std::move(chunk));
            aggPool_.submit([this] { accumulateOneChunk(); });
        }
    });
}

void
AggregationEngine::accumulateOneChunk()
{
    Chunk chunk;
    if (!ring_.pop(chunk))
        return;
    const size_t stripe =
        (static_cast<size_t>(chunk.offset) / stripeWords_) %
        stripes_.size();
    {
        std::lock_guard<std::mutex> lock(stripes_[stripe]);
        for (size_t i = 0; i < chunk.values.size(); ++i)
            aggBuffer_[chunk.offset + i] += chunk.values[i];
    }
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        wordsRemaining_ -= static_cast<int64_t>(chunk.values.size());
        if (wordsRemaining_ <= 0)
            doneCv_.notify_all();
    }
}

std::vector<double>
AggregationEngine::finish()
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [&] { return wordsRemaining_ <= 0; });
    lock.unlock();
    // Both pools are quiescent for this round once every word landed.
    netPool_.waitIdle();
    aggPool_.waitIdle();
    return aggBuffer_;
}

} // namespace cosmic::sys
