#include "system/aggregation.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace cosmic::sys {

AggregationEngine::AggregationEngine(const AggregationConfig &config)
    : config_(config),
      pool_(config.pool ? config.pool : std::make_shared<BufferPool>()),
      netPool_(config.networkingThreads),
      aggPool_(config.aggregationThreads), ring_(config.ringCapacity),
      stripes_(64)
{
    COSMIC_ASSERT(config.chunkWords > 0, "chunk size must be positive");
}

AggregationEngine::~AggregationEngine()
{
    ring_.close();
}

void
AggregationEngine::begin(int64_t words, uint64_t seq,
                         uint64_t min_epoch)
{
    COSMIC_ASSERT(words > 0, "bad aggregation round");
    aggBuffer_ = pool_->acquire(words);
    std::fill(aggBuffer_.begin(), aggBuffer_.end(), 0.0);
    stripeWords_ = std::max<size_t>(
        config_.chunkWords,
        (words + stripes_.size() - 1) / stripes_.size());
    {
        std::lock_guard<std::mutex> lock(roundMutex_);
        roundSeq_ = seq;
        minEpoch_ = min_epoch;
        senders_.clear();
        contributors_ = 0;
        minEpochRound_ = ~uint64_t{0};
    }
    std::lock_guard<std::mutex> lock(doneMutex_);
    wordsRemaining_ = 0; // grows as messages are accepted
}

bool
AggregationEngine::onMessage(Message msg)
{
    const size_t width = aggBuffer_.size();
    const size_t span = msg.payload.size();
    // Payload sizing guard: a message whose (offset, span) does not
    // fit inside the round vector is malformed (or mis-routed).
    // Silently resizing would zero-pad or truncate someone's gradient
    // into the sum — reject it, log it, count it.
    if (span == 0 || static_cast<size_t>(msg.offset) + span > width) {
        std::fprintf(stderr,
                     "[cosmic-agg] dropping malformed partial from "
                     "node %d: offset %u + %zu words, round width "
                     "%zu\n",
                     msg.from, msg.offset, span, width);
        std::lock_guard<std::mutex> lock(roundMutex_);
        ++malformedDropped_;
        pool_->release(std::move(msg.payload));
        return false;
    }
    // Sequence/epoch/duplicate reconciliation: wrong-round messages (a
    // straggler's late partial), partials older than the staleness
    // bound, and same-round duplicate or overlapping spans (the wire's
    // duplicated delivery) are recycled, counted, and never touch the
    // sum — aggregation is idempotent.
    std::vector<double> full;
    const int senderId = msg.from;
    {
        std::lock_guard<std::mutex> lock(roundMutex_);
        if (msg.seq != roundSeq_) {
            ++staleDropped_;
            pool_->release(std::move(msg.payload));
            return false;
        }
        if (msg.epoch < minEpoch_) {
            ++tooStaleDropped_;
            pool_->release(std::move(msg.payload));
            return false;
        }
        SenderState *st = nullptr;
        for (auto &s : senders_)
            if (s.sender == msg.from) {
                st = &s;
                break;
            }
        if (st && st->complete) {
            ++duplicatesDropped_;
            pool_->release(std::move(msg.payload));
            return false;
        }
        if (st) {
            for (const auto &sp : st->spans)
                if (msg.offset < sp.first + sp.second &&
                    sp.first < msg.offset + span) {
                    ++duplicatesDropped_;
                    pool_->release(std::move(msg.payload));
                    return false;
                }
        } else {
            senders_.emplace_back();
            st = &senders_.back();
            st->sender = msg.from;
            st->epoch = msg.epoch;
            st->contributors = msg.contributors;
        }
        st->epoch = std::min(st->epoch, msg.epoch);
        st->spans.emplace_back(msg.offset,
                               static_cast<uint32_t>(span));
        st->wordsStaged += static_cast<int64_t>(span);

        if (msg.offset == 0 && span == width &&
            st->spans.size() == 1) {
            // Whole-vector fast path: no staging copy — the payload
            // itself is the completed vector (the original zero-copy
            // route, untouched by streaming mode).
            full = std::move(msg.payload);
        } else {
            // Chunk: stage into the sender's reassembly buffer. Spans
            // never overlap, and completion requires them to tile the
            // full width, so no zero-fill is needed.
            if (st->staging.empty())
                st->staging = pool_->acquire(width);
            std::copy(msg.payload.begin(), msg.payload.end(),
                      st->staging.begin() + msg.offset);
            pool_->release(std::move(msg.payload));
            if (st->wordsStaged < static_cast<int64_t>(width))
                return true; // accepted, sender not yet complete
            full = std::move(st->staging);
        }
        // The sender completed: only now does it count.
        st->complete = true;
        contributors_ += st->contributors;
        minEpochRound_ = std::min(minEpochRound_, st->epoch);
        if (st->epoch < roundSeq_) {
            ++staleAccepted_;
            maxEpochLag_ =
                std::max(maxEpochLag_, roundSeq_ - st->epoch);
        }
        if (config_.deterministic) {
            // Park the payload; finish() folds in sender-id order so
            // the sum is independent of arrival order and scheduling.
            roundPayloads_.emplace_back(msg.from, std::move(full));
            return true;
        }
    }
    dispatchComplete(senderId, std::move(full));
    return true;
}

void
AggregationEngine::dispatchComplete(int sender,
                                    std::vector<double> payload)
{
    {
        // Claim this round's words before dispatch so finish() (called
        // after the last onMessage returns) sees the full total.
        std::lock_guard<std::mutex> lock(doneMutex_);
        wordsRemaining_ += static_cast<int64_t>(payload.size());
    }
    // Move the payload into a pooled slot — the networking threads
    // will hand out references into it, never copies. Deque growth is
    // serialized by slotsMutex_ and element addresses are stable, so
    // the resolved pointer stays valid lock-free for the slot's
    // acquired lifetime.
    PayloadSlot *slot;
    {
        std::lock_guard<std::mutex> lock(slotsMutex_);
        if (freeSlots_.empty()) {
            slots_.emplace_back();
            slots_.back().id =
                static_cast<int32_t>(slots_.size()) - 1;
            freeSlots_.push_back(slots_.back().id);
        }
        slot = &slots_[freeSlots_.back()];
        freeSlots_.pop_back();
    }
    slot->data = std::move(payload);
    slot->sender = sender;
    const size_t words = slot->data.size();
    const int64_t chunks = static_cast<int64_t>(
        (words + config_.chunkWords - 1) / config_.chunkWords);
    slot->chunksRemaining.store(chunks, std::memory_order_relaxed);

    // Networking pool: produce (sender, offset, span) records into the
    // circular buffer; each produced chunk wakes one aggregation task.
    // The two-pointer capture stays within std::function's inline
    // storage, so dispatching a message allocates nothing.
    netPool_.submit([this, slot] {
        const double *payload = slot->data.data();
        const size_t total = slot->data.size();
        for (size_t off = 0; off < total; off += config_.chunkWords) {
            Chunk chunk;
            chunk.sender = slot->sender;
            chunk.offset = static_cast<int64_t>(off);
            chunk.values = payload + off;
            chunk.length = static_cast<int64_t>(
                std::min(config_.chunkWords, total - off));
            chunk.slot = slot->id;
            ring_.push(chunk);
            aggPool_.submit([this] { accumulateOneChunk(); });
        }
    });
}

int
AggregationEngine::accepted() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    int complete = 0;
    for (const auto &s : senders_)
        complete += s.complete ? 1 : 0;
    return complete;
}

bool
AggregationEngine::senderComplete(int from) const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    for (const auto &s : senders_)
        if (s.sender == from)
            return s.complete;
    return false;
}

int
AggregationEngine::contributors() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return contributors_;
}

uint64_t
AggregationEngine::minEpochAccepted() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return minEpochRound_;
}

uint64_t
AggregationEngine::duplicatesDropped() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return duplicatesDropped_;
}

uint64_t
AggregationEngine::staleDropped() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return staleDropped_;
}

uint64_t
AggregationEngine::malformedDropped() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return malformedDropped_;
}

uint64_t
AggregationEngine::tooStaleDropped() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return tooStaleDropped_;
}

uint64_t
AggregationEngine::staleAccepted() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return staleAccepted_;
}

uint64_t
AggregationEngine::maxEpochLag() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return maxEpochLag_;
}

uint64_t
AggregationEngine::incompleteDropped() const
{
    std::lock_guard<std::mutex> lock(roundMutex_);
    return incompleteDropped_;
}

void
AggregationEngine::accumulateOneChunk()
{
    Chunk chunk;
    if (!ring_.pop(chunk))
        return;
    const size_t stripe =
        (static_cast<size_t>(chunk.offset) / stripeWords_) %
        stripes_.size();
    {
        std::lock_guard<std::mutex> lock(stripes_[stripe]);
        for (int64_t i = 0; i < chunk.length; ++i)
            aggBuffer_[chunk.offset + i] += chunk.values[i];
    }
    // The fold above is the last read through chunk.values: only after
    // it may this chunk's credit free the slot for reuse.
    PayloadSlot *slot;
    {
        std::lock_guard<std::mutex> lock(slotsMutex_);
        slot = &slots_[chunk.slot];
    }
    if (slot->chunksRemaining.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
        pool_->release(std::move(slot->data));
        std::lock_guard<std::mutex> lock(slotsMutex_);
        freeSlots_.push_back(chunk.slot);
    }
    {
        std::lock_guard<std::mutex> lock(doneMutex_);
        wordsRemaining_ -= chunk.length;
        if (wordsRemaining_ <= 0)
            doneCv_.notify_all();
    }
}

std::vector<double>
AggregationEngine::finish()
{
    {
        // Discard senders whose chunks never completed (a dropped
        // chunk under faults): their staging buffers are recycled and
        // they were never counted, so a torn partial cannot leak into
        // the sum. Whole-vector senders are always complete here.
        std::lock_guard<std::mutex> lock(roundMutex_);
        for (auto &s : senders_) {
            if (s.complete)
                continue;
            ++incompleteDropped_;
            if (!s.staging.empty())
                pool_->release(std::move(s.staging));
        }
    }
    if (config_.deterministic) {
        // Fold parked payloads in sender-id order: the sum becomes a
        // pure function of the accepted set. onMessage of this round
        // has returned before finish() is called, so roundPayloads_
        // is quiescent; the lock just pairs with onMessage's writes.
        std::vector<std::pair<int, std::vector<double>>> parked;
        {
            std::lock_guard<std::mutex> lock(roundMutex_);
            parked = std::move(roundPayloads_);
            roundPayloads_.clear();
        }
        std::sort(parked.begin(), parked.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &entry : parked) {
            const std::vector<double> &payload = entry.second;
            for (size_t i = 0; i < payload.size(); ++i)
                aggBuffer_[i] += payload[i];
            pool_->release(std::move(entry.second));
        }
        return std::move(aggBuffer_);
    }
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [&] { return wordsRemaining_ <= 0; });
    lock.unlock();
    // Both pools are quiescent for this round once every word landed.
    netPool_.waitIdle();
    aggPool_.waitIdle();
    // Move, don't copy: begin() re-acquires from the pool.
    return std::move(aggBuffer_);
}

} // namespace cosmic::sys
