/**
 * @file
 * The Sigma node's aggregation engine (paper Fig. 2).
 *
 * Wiring: the Incoming Network Handler (the caller's receive loop — our
 * epoll analog) hands each received partial update to onMessage(). The
 * update's payload is *moved* into a pooled payload slot — never
 * copied — and a networking-pool thread produces (sender, offset,
 * span-into-slot) reference records into the bounded Circular Buffer;
 * for each produced chunk an aggregation-pool task consumes one chunk
 * and folds the referenced span into the Aggregation Buffer. When the
 * last chunk of a slot is consumed, the slot's vector is recycled
 * through the BufferPool so the sender side can reuse it next round.
 * Networking threads are the producers, aggregation threads the
 * consumers, and the bounded ring lets communication overlap with
 * computation while capping memory — with zero per-chunk and (steady
 * state) zero per-message allocation.
 *
 * Sequence-number reconciliation: each round is armed with the
 * iteration's sequence number, and onMessage() rejects (a) messages
 * from a round other than the current one — stragglers' late partials
 * from an earlier iteration — and (b) same-round duplicates from a
 * sender already folded in — the wire's duplicated deliveries. A
 * rejected payload is recycled and never touches the sum, making
 * aggregation idempotent under message duplication and reordering
 * (property-tested in test_fault_injection.cpp). The engine no longer
 * needs the sender count up front: finish() completes once every
 * *accepted* word has landed, so a failure-tolerant caller can stop
 * feeding it after a timeout and aggregate whatever k of n partials
 * arrived.
 *
 * Bounded-staleness gating: begin() additionally arms a minimum
 * acceptable model epoch. A partial computed from a model older than
 * `round seq - maxStaleness` is rejected (tooStaleDropped) and its
 * weight is absorbed by the same k-of-n contributor rescaling that
 * covers missing partials. The barrier protocol stamps epoch = seq on
 * every message, so with maxStaleness = 0 the gate is exact freshness
 * and nothing changes on the synchronous path.
 *
 * Chunked streaming: a sender may split its round vector into several
 * (offset, span) chunk messages. Chunks are staged per sender into a
 * pooled round-width buffer (duplicate and overlapping spans are
 * rejected) and the sender only *counts* — contributors, epoch, fold —
 * once its spans tile the full width. A sender whose chunks never
 * complete (a dropped chunk under faults) is discarded wholesale at
 * finish(), so a torn partial can never corrupt the sum. Whole-vector
 * messages (offset 0, span == width) bypass staging and take the
 * original zero-copy path.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "system/buffer_pool.h"
#include "system/channel.h"
#include "system/circular_buffer.h"
#include "system/thread_pool.h"

namespace cosmic::sys {

/** Configuration of one aggregation engine. */
struct AggregationConfig
{
    int networkingThreads = 2;
    int aggregationThreads = 2;
    /** Chunks in flight in the circular buffer. */
    size_t ringCapacity = 16;
    /** Words per chunk the networking threads produce. */
    size_t chunkWords = 1024;
    /**
     * Deterministic fold order: park accepted payloads and fold them
     * at finish() sorted by sender id, instead of streaming chunks
     * through the ring in arrival order. FP addition is not
     * associative, so the streaming path's sum depends on thread
     * scheduling (runs agree only to ~1e-9); this mode makes the sum
     * a pure function of the accepted set — the property the
     * cross-backend bit-exactness tests and `cosmicd --verify` need.
     * Costs the compute/communication overlap; default off.
     */
    bool deterministic = false;
    /**
     * Recycler for consumed payloads and round buffers. Shared with
     * the runtime so buffers circulate sender -> engine -> sender;
     * the engine creates a private pool when left null.
     */
    std::shared_ptr<BufferPool> pool;
};

/** Concurrent sum-aggregator for fixed-width vectors. */
class AggregationEngine
{
  public:
    explicit AggregationEngine(const AggregationConfig &config);
    ~AggregationEngine();

    /**
     * Arms the engine for one round of @p words-word vectors carrying
     * sequence number @p seq. Any number of distinct senders may then
     * arrive via onMessage — the round total is whatever was accepted
     * by the time finish() is called. Partials whose model epoch is
     * below @p min_epoch are rejected (the bounded-staleness gate;
     * the default accepts any epoch, which is the pre-async
     * behavior).
     */
    void begin(int64_t words, uint64_t seq, uint64_t min_epoch = 0);

    /**
     * Dispatches one received partial update — a whole round vector or
     * one (offset, span) chunk of it — into the pipeline. The payload
     * is moved into a pooled slot (whole vectors) or staged into the
     * sender's reassembly buffer (chunks); the caller's vector is
     * consumed either way.
     *
     * @return true when the message was accepted for this round;
     *         false when it was rejected (stale sequence number, an
     *         epoch below the staleness bound, a same-round duplicate
     *         or overlapping span from a sender, or a payload that
     *         does not fit the round width — a malformed wire message
     *         is dropped and logged, never silently resized) — the
     *         payload is recycled and the rejection counted.
     */
    bool onMessage(Message msg);

    /** True once @p from's spans tile the full round width (a
     *  whole-vector message completes immediately). */
    bool senderComplete(int from) const;

    /**
     * Blocks until every accepted word has been aggregated and *moves*
     * the summed vector out, leaving the engine ready for the next
     * begin(). Call only after the last onMessage() of the round has
     * returned. The caller may release the returned buffer back to
     * the engine's pool when done with it.
     */
    std::vector<double> finish();

    /** Senders fully accepted (complete) this round so far. */
    int accepted() const;
    /** Total contributor weight (sum of Message::contributors over
     *  complete senders) accepted this round — the k in k-of-n
     *  rescaling. A sender still missing chunks contributes nothing. */
    int contributors() const;
    /** Smallest model epoch among this round's complete senders;
     *  UINT64_MAX when none completed. A Sigma propagates
     *  min(own epoch, this) up the tree. */
    uint64_t minEpochAccepted() const;

    /** Same-round duplicate messages rejected (cumulative). */
    uint64_t duplicatesDropped() const;
    /** Wrong-round messages rejected (cumulative). */
    uint64_t staleDropped() const;
    /** Wrong-width payloads rejected (cumulative). */
    uint64_t malformedDropped() const;
    /** Partials rejected by the staleness bound (cumulative). */
    uint64_t tooStaleDropped() const;
    /** Complete senders accepted with a lagging epoch (cumulative). */
    uint64_t staleAccepted() const;
    /** Largest (round seq - epoch) lag among accepted senders
     *  (cumulative max). */
    uint64_t maxEpochLag() const;
    /** Chunked senders discarded incomplete at finish (cumulative). */
    uint64_t incompleteDropped() const;

    /** Ring high-water mark (observability). */
    size_t ringHighWater() const { return ring_.highWater(); }

    /** The payload recycler in use (shared or engine-private). */
    const std::shared_ptr<BufferPool> &pool() const { return pool_; }

  private:
    /** One in-flight message payload shared by its chunks. */
    struct PayloadSlot
    {
        std::vector<double> data;
        /** Chunks still unconsumed; the last consumer recycles. */
        std::atomic<int64_t> chunksRemaining{0};
        /** Originating node of the payload currently in the slot. */
        int sender = -1;
        /** The slot's own index in slots_ (fixed at creation). */
        int32_t id = -1;
    };

    /** Per-sender reassembly state for one round. */
    struct SenderState
    {
        int sender = -1;
        /** Smallest epoch over the sender's chunks. */
        uint64_t epoch = 0;
        /** k-of-n weight, taken from the first chunk. */
        int contributors = 0;
        int64_t wordsStaged = 0;
        bool complete = false;
        /** Accepted (offset, span) pairs — overlap rejection. */
        std::vector<std::pair<uint32_t, uint32_t>> spans;
        /** Reassembly buffer; unused by whole-vector senders. */
        std::vector<double> staging;
    };

    void accumulateOneChunk();
    /** Moves a completed sender's full vector into the fold pipeline
     *  (parked in deterministic mode, slot + ring otherwise). */
    void dispatchComplete(int sender, std::vector<double> payload);

    AggregationConfig config_;
    std::shared_ptr<BufferPool> pool_;
    ThreadPool netPool_;
    ThreadPool aggPool_;
    CircularBuffer ring_;

    /** Payload slots (deque: grows to the peak in-flight message
     *  count, addresses stay stable, slots are reused via the
     *  freelist). Guarded by slotsMutex_; slot.data of an *acquired*
     *  slot is read lock-free by aggregation threads, which is safe
     *  because it is only reassigned while the slot is free. */
    std::deque<PayloadSlot> slots_;
    std::vector<int32_t> freeSlots_;
    std::mutex slotsMutex_;

    std::vector<double> aggBuffer_;
    /** Striped locks over aggBuffer_ regions (one per chunk slot). */
    std::vector<std::mutex> stripes_;
    size_t stripeWords_ = 1;

    /** Round state: the armed sequence number, the staleness gate,
     *  per-sender reassembly, and the total contributor weight.
     *  Guarded by roundMutex_ (onMessage may race in tests). */
    mutable std::mutex roundMutex_;
    uint64_t roundSeq_ = 0;
    uint64_t minEpoch_ = 0;
    std::vector<SenderState> senders_;
    int contributors_ = 0;
    uint64_t minEpochRound_ = ~uint64_t{0};
    uint64_t duplicatesDropped_ = 0;
    uint64_t staleDropped_ = 0;
    uint64_t malformedDropped_ = 0;
    uint64_t tooStaleDropped_ = 0;
    uint64_t staleAccepted_ = 0;
    uint64_t maxEpochLag_ = 0;
    uint64_t incompleteDropped_ = 0;
    /** Deterministic mode: accepted (sender, payload) pairs parked
     *  until finish() folds them in sender-id order. */
    std::vector<std::pair<int, std::vector<double>>> roundPayloads_;

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    int64_t wordsRemaining_ = 0;
};

} // namespace cosmic::sys
