/**
 * @file
 * The Sigma node's aggregation engine (paper Fig. 2).
 *
 * Wiring: the Incoming Network Handler (the caller's receive loop — our
 * epoll analog) hands each received partial update to onMessage(). A
 * networking-pool thread copies it out of the "socket" into the bounded
 * Circular Buffer in chunks; for each produced chunk an aggregation-
 * pool task consumes one chunk and folds it into the Aggregation
 * Buffer. Networking threads are the producers, aggregation threads
 * the consumers, and the bounded ring lets communication overlap with
 * computation while capping memory.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "system/channel.h"
#include "system/circular_buffer.h"
#include "system/thread_pool.h"

namespace cosmic::sys {

/** Configuration of one aggregation engine. */
struct AggregationConfig
{
    int networkingThreads = 2;
    int aggregationThreads = 2;
    /** Chunks in flight in the circular buffer. */
    size_t ringCapacity = 16;
    /** Words per chunk the networking threads produce. */
    size_t chunkWords = 1024;
};

/** Concurrent sum-aggregator for fixed-width vectors. */
class AggregationEngine
{
  public:
    explicit AggregationEngine(const AggregationConfig &config);
    ~AggregationEngine();

    /**
     * Arms the engine for one round: @p senders vectors of @p words
     * words each will arrive via onMessage.
     */
    void begin(int senders, int64_t words);

    /** Dispatches one received partial update into the pipeline. */
    void onMessage(Message msg);

    /**
     * Blocks until every expected word has been aggregated and returns
     * the summed vector.
     */
    std::vector<double> finish();

    /** Ring high-water mark (observability). */
    size_t ringHighWater() const { return ring_.highWater(); }

  private:
    void accumulateOneChunk();

    AggregationConfig config_;
    ThreadPool netPool_;
    ThreadPool aggPool_;
    CircularBuffer ring_;

    std::vector<double> aggBuffer_;
    /** Striped locks over aggBuffer_ regions (one per chunk slot). */
    std::vector<std::mutex> stripes_;
    size_t stripeWords_ = 1;

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    int64_t wordsRemaining_ = 0;
};

} // namespace cosmic::sys
