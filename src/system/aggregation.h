/**
 * @file
 * The Sigma node's aggregation engine (paper Fig. 2).
 *
 * Wiring: the Incoming Network Handler (the caller's receive loop — our
 * epoll analog) hands each received partial update to onMessage(). The
 * update's payload is *moved* into a pooled payload slot — never
 * copied — and a networking-pool thread produces (sender, offset,
 * span-into-slot) reference records into the bounded Circular Buffer;
 * for each produced chunk an aggregation-pool task consumes one chunk
 * and folds the referenced span into the Aggregation Buffer. When the
 * last chunk of a slot is consumed, the slot's vector is recycled
 * through the BufferPool so the sender side can reuse it next round.
 * Networking threads are the producers, aggregation threads the
 * consumers, and the bounded ring lets communication overlap with
 * computation while capping memory — with zero per-chunk and (steady
 * state) zero per-message allocation.
 *
 * Sequence-number reconciliation: each round is armed with the
 * iteration's sequence number, and onMessage() rejects (a) messages
 * from a round other than the current one — stragglers' late partials
 * from an earlier iteration — and (b) same-round duplicates from a
 * sender already folded in — the wire's duplicated deliveries. A
 * rejected payload is recycled and never touches the sum, making
 * aggregation idempotent under message duplication and reordering
 * (property-tested in test_fault_injection.cpp). The engine no longer
 * needs the sender count up front: finish() completes once every
 * *accepted* word has landed, so a failure-tolerant caller can stop
 * feeding it after a timeout and aggregate whatever k of n partials
 * arrived.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "system/buffer_pool.h"
#include "system/channel.h"
#include "system/circular_buffer.h"
#include "system/thread_pool.h"

namespace cosmic::sys {

/** Configuration of one aggregation engine. */
struct AggregationConfig
{
    int networkingThreads = 2;
    int aggregationThreads = 2;
    /** Chunks in flight in the circular buffer. */
    size_t ringCapacity = 16;
    /** Words per chunk the networking threads produce. */
    size_t chunkWords = 1024;
    /**
     * Deterministic fold order: park accepted payloads and fold them
     * at finish() sorted by sender id, instead of streaming chunks
     * through the ring in arrival order. FP addition is not
     * associative, so the streaming path's sum depends on thread
     * scheduling (runs agree only to ~1e-9); this mode makes the sum
     * a pure function of the accepted set — the property the
     * cross-backend bit-exactness tests and `cosmicd --verify` need.
     * Costs the compute/communication overlap; default off.
     */
    bool deterministic = false;
    /**
     * Recycler for consumed payloads and round buffers. Shared with
     * the runtime so buffers circulate sender -> engine -> sender;
     * the engine creates a private pool when left null.
     */
    std::shared_ptr<BufferPool> pool;
};

/** Concurrent sum-aggregator for fixed-width vectors. */
class AggregationEngine
{
  public:
    explicit AggregationEngine(const AggregationConfig &config);
    ~AggregationEngine();

    /**
     * Arms the engine for one round of @p words-word vectors carrying
     * sequence number @p seq. Any number of distinct senders may then
     * arrive via onMessage — the round total is whatever was accepted
     * by the time finish() is called.
     */
    void begin(int64_t words, uint64_t seq);

    /**
     * Dispatches one received partial update into the pipeline. The
     * payload is moved into a pooled slot; the caller's vector is
     * consumed (zero-copy).
     *
     * @return true when the message was accepted for this round;
     *         false when it was rejected (stale sequence number, a
     *         same-round duplicate sender, or a payload whose word
     *         count disagrees with the round width — a malformed wire
     *         message is dropped and logged, never silently resized) —
     *         the payload is recycled and the rejection counted.
     */
    bool onMessage(Message msg);

    /**
     * Blocks until every accepted word has been aggregated and *moves*
     * the summed vector out, leaving the engine ready for the next
     * begin(). Call only after the last onMessage() of the round has
     * returned. The caller may release the returned buffer back to
     * the engine's pool when done with it.
     */
    std::vector<double> finish();

    /** Messages accepted this round so far. */
    int accepted() const;
    /** Total contributor weight (sum of Message::contributors)
     *  accepted this round — the k in k-of-n rescaling. */
    int contributors() const;

    /** Same-round duplicate messages rejected (cumulative). */
    uint64_t duplicatesDropped() const;
    /** Wrong-round messages rejected (cumulative). */
    uint64_t staleDropped() const;
    /** Wrong-width payloads rejected (cumulative). */
    uint64_t malformedDropped() const;

    /** Ring high-water mark (observability). */
    size_t ringHighWater() const { return ring_.highWater(); }

    /** The payload recycler in use (shared or engine-private). */
    const std::shared_ptr<BufferPool> &pool() const { return pool_; }

  private:
    /** One in-flight message payload shared by its chunks. */
    struct PayloadSlot
    {
        std::vector<double> data;
        /** Chunks still unconsumed; the last consumer recycles. */
        std::atomic<int64_t> chunksRemaining{0};
        /** Originating node of the payload currently in the slot. */
        int sender = -1;
        /** The slot's own index in slots_ (fixed at creation). */
        int32_t id = -1;
    };

    void accumulateOneChunk();

    AggregationConfig config_;
    std::shared_ptr<BufferPool> pool_;
    ThreadPool netPool_;
    ThreadPool aggPool_;
    CircularBuffer ring_;

    /** Payload slots (deque: grows to the peak in-flight message
     *  count, addresses stay stable, slots are reused via the
     *  freelist). Guarded by slotsMutex_; slot.data of an *acquired*
     *  slot is read lock-free by aggregation threads, which is safe
     *  because it is only reassigned while the slot is free. */
    std::deque<PayloadSlot> slots_;
    std::vector<int32_t> freeSlots_;
    std::mutex slotsMutex_;

    std::vector<double> aggBuffer_;
    /** Striped locks over aggBuffer_ regions (one per chunk slot). */
    std::vector<std::mutex> stripes_;
    size_t stripeWords_ = 1;

    /** Round state: the armed sequence number, senders folded in so
     *  far, and their total contributor weight. Guarded by
     *  roundMutex_ (onMessage may race in tests). */
    mutable std::mutex roundMutex_;
    uint64_t roundSeq_ = 0;
    std::vector<int> seenSenders_;
    int contributors_ = 0;
    uint64_t duplicatesDropped_ = 0;
    uint64_t staleDropped_ = 0;
    uint64_t malformedDropped_ = 0;
    /** Deterministic mode: accepted (sender, payload) pairs parked
     *  until finish() folds them in sender-id order. */
    std::vector<std::pair<int, std::vector<double>>> roundPayloads_;

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    int64_t wordsRemaining_ = 0;
};

} // namespace cosmic::sys
