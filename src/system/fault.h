/**
 * @file
 * Deterministic fault injection for the scale-out runtime.
 *
 * The paper's system software (Sec. 4.3) assumes a healthy commodity
 * cluster; this subsystem is how we *prove* the runtime no longer
 * does. A FaultPlan is a seeded, fully explicit schedule of failures —
 * node crash-at-iteration, per-link message drop/delay/duplication,
 * and straggler slowdowns — and a FaultInjector is the thread-safe
 * execution of one plan: Channel::send() consults it on the wire path,
 * TrainingNode consults it before computing, and ClusterRuntime
 * consults it when deciding which nodes still run. Every fired fault
 * is counted, so a chaos test can assert that the recovery counters in
 * the TrainingReport exactly match the injected plan.
 *
 * The hooks are zero-cost when disabled: a runtime with an empty plan
 * installs no injector, every hook site is a single null-pointer
 * check, and the training trajectory is bit-for-bit the no-fault
 * code path.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cosmic::sys {

/** Node @p node stops participating from iteration @p atIteration. */
struct CrashFault
{
    int node = -1;
    uint64_t atIteration = 0;
};

/** What a link fault does to the one message it fires on. */
enum class LinkFaultKind
{
    /** The wire eats the message. */
    Drop,
    /** Delivery is delayed by delayMs (sender-side stall). */
    Delay,
    /** The message is delivered twice. */
    Duplicate,
};

/**
 * One scheduled link fault. Fires at most once, on the first message
 * matching (from, to, iteration); -1 wildcards an endpoint.
 */
struct LinkFault
{
    LinkFaultKind kind = LinkFaultKind::Drop;
    int from = -1;
    int to = -1;
    uint64_t iteration = 0;
    /** Delay faults only. */
    double delayMs = 0.0;
};

/** Node @p node stalls @p delayMs before computing, for a range of
 *  iterations (inclusive). */
struct StragglerFault
{
    int node = -1;
    uint64_t firstIteration = 0;
    uint64_t lastIteration = 0;
    double delayMs = 0.0;
};

/**
 * A deterministic schedule of failures. Build one explicitly with the
 * chainable builders, or draw a seeded random plan with randomized().
 * Plans are immutable once handed to a FaultInjector, so concurrent
 * queries need no locks.
 */
class FaultPlan
{
  public:
    /** Node @p node dies (permanently) at iteration @p at_iteration. */
    FaultPlan &crash(int node, uint64_t at_iteration);
    /** Drops the first @p from -> @p to message of @p iteration. */
    FaultPlan &drop(int from, int to, uint64_t iteration);
    /** Delays that message by @p delay_ms instead. */
    FaultPlan &delay(int from, int to, uint64_t iteration,
                     double delay_ms);
    /** Duplicates that message instead. */
    FaultPlan &duplicate(int from, int to, uint64_t iteration);
    /** Node @p node stalls @p delay_ms before computing in iterations
     *  [@p first, @p last]. */
    FaultPlan &straggle(int node, uint64_t first, uint64_t last,
                        double delay_ms);

    bool
    empty() const
    {
        return crashes_.empty() && links_.empty() &&
               stragglers_.empty();
    }

    /** True once @p node's scheduled crash has fired by @p iteration. */
    bool crashed(int node, uint64_t iteration) const;

    /** Straggler stall for (@p node, @p iteration); 0 when none. */
    double stragglerDelayMs(int node, uint64_t iteration) const;

    const std::vector<CrashFault> &crashes() const { return crashes_; }
    const std::vector<LinkFault> &linkFaults() const { return links_; }
    const std::vector<StragglerFault> &
    stragglers() const
    {
        return stragglers_;
    }

    /**
     * A seeded chaos plan for an @p nodes-node cluster running
     * @p iterations iterations: possibly one non-master crash, a few
     * link faults on random links, and one short straggler window.
     * The same seed always yields the same plan (the chaos CI loop
     * sweeps seeds via COSMIC_FAULT_SEED).
     */
    static FaultPlan randomized(uint64_t seed, int nodes,
                                uint64_t iterations);

  private:
    std::vector<CrashFault> crashes_;
    std::vector<LinkFault> links_;
    std::vector<StragglerFault> stragglers_;
};

/**
 * Timeout/retry/eviction policy of the failure-tolerant protocol.
 * Activated when a FaultPlan is installed or `enabled` is set; with
 * the policy inactive every receive is the original blocking call.
 */
struct FaultToleranceConfig
{
    /** Force the tolerant protocol on even with an empty plan. */
    bool enabled = false;
    /** First receiveFor() window at a group Sigma. The master waits
     *  2x (it sits behind one timeout level), broadcast waiters 3x. */
    double receiveTimeoutMs = 150.0;
    /** Retries after the first timeout window (exponential backoff). */
    int maxRetries = 2;
    /** Multiplier applied to the window after each timeout. */
    double backoffFactor = 2.0;
    /** Consecutive iterations a node must miss before the Director
     *  evicts it and repairs the topology (straggler tolerance). */
    int evictAfterMisses = 2;
};

/** Recovery/injection counters surfaced in the TrainingReport. */
struct RecoveryStats
{
    /** receiveFor() windows that expired (mechanism counter; timing
     *  sensitive, so tests assert lower bounds only). */
    uint64_t receiveTimeouts = 0;
    /** Expected partial updates a Sigma gave up waiting for. */
    uint64_t partialsMissed = 0;
    /** Model broadcasts a node gave up waiting for. */
    uint64_t broadcastsMissed = 0;
    /** Same-round duplicate partials rejected by sequence dedup. */
    uint64_t duplicatesDropped = 0;
    /** Prior-round messages discarded by sequence reconciliation. */
    uint64_t staleDropped = 0;
    /** Payloads rejected because their word count disagreed with the
     *  model width (a malformed or mis-routed wire message). */
    uint64_t malformedDropped = 0;
    /** Injected link faults that fired, by kind. */
    uint64_t messagesDropped = 0;
    uint64_t messagesDelayed = 0;
    uint64_t messagesDuplicated = 0;
    /** Injected straggler stalls served. */
    uint64_t stragglerStalls = 0;
    /** Nodes the Director evicted after repeated misses. */
    uint64_t nodesEvicted = 0;
    /** Deltas promoted to GroupSigma during topology repair. */
    uint64_t sigmaPromotions = 0;
    /** Topology repair rounds performed. */
    uint64_t topologyRepairs = 0;

    RecoveryStats &operator+=(const RecoveryStats &o);
};

/**
 * Thread-safe executor of one FaultPlan. Link faults fire at most
 * once each (claimed with an atomic flag), and every fired fault is
 * counted so tests can reconcile counters against the plan.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** What the wire does to one message (Channel::send hook). */
    struct SendAction
    {
        bool drop = false;
        bool duplicate = false;
        double delayMs = 0.0;
    };

    /** Resolves (and claims) the link faults matching one send. */
    SendAction onSend(int from, int to, uint64_t seq);

    /** True when @p node is dead at iteration @p seq. */
    bool
    crashed(int node, uint64_t seq) const
    {
        return plan_.crashed(node, seq);
    }

    /** Straggler stall for this compute, counting fired stalls. */
    double stragglerDelayMs(int node, uint64_t seq);

    uint64_t messagesDropped() const { return dropped_.load(); }
    uint64_t messagesDelayed() const { return delayed_.load(); }
    uint64_t messagesDuplicated() const { return duplicated_.load(); }
    uint64_t stragglerStalls() const { return stalls_.load(); }

    const FaultPlan &plan() const { return plan_; }

  private:
    FaultPlan plan_;
    /** One claim flag per plan link fault (fire-once semantics). */
    std::unique_ptr<std::atomic<bool>[]> linkFired_;
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> delayed_{0};
    std::atomic<uint64_t> duplicated_{0};
    std::atomic<uint64_t> stalls_{0};
};

} // namespace cosmic::sys
