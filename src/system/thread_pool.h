/**
 * @file
 * Internally managed thread pool.
 *
 * The CoSMIC system software avoids generic OS thread management by
 * keeping two internally managed pools per Sigma node — one for
 * networking, one for aggregation (paper Sec. 3). Threads are created
 * once and reused across connections and iterations, which is exactly
 * what this pool provides: a fixed set of workers draining a task
 * queue, with a waitIdle() barrier for iteration boundaries.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cosmic::sys {

/** Fixed-size worker pool with a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawns @p threads workers immediately. */
    explicit ThreadPool(int threads);

    /** Stops accepting work, drains the queue, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues a task for the next free worker. */
    void submit(std::function<void()> task);

    /** Blocks until the queue is empty and all workers are idle. */
    void waitIdle();

    int size() const { return static_cast<int>(workers_.size()); }

    /** Tasks executed since construction (observability). */
    uint64_t tasksExecuted() const;

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable idle_;
    int active_ = 0;
    uint64_t executed_ = 0;
    bool stopping_ = false;
};

} // namespace cosmic::sys
