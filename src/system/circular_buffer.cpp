#include "system/circular_buffer.h"

#include <algorithm>

#include "common/error.h"

namespace cosmic::sys {

CircularBuffer::CircularBuffer(size_t capacity) : ring_(capacity)
{
    COSMIC_ASSERT(capacity > 0, "circular buffer needs capacity");
}

void
CircularBuffer::push(Chunk chunk)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock,
                  [&] { return count_ < ring_.size() || closed_; });
    if (closed_)
        return;
    ring_[(head_ + count_) % ring_.size()] = std::move(chunk);
    ++count_;
    highWater_ = std::max(highWater_, count_);
    lock.unlock();
    notEmpty_.notify_one();
}

bool
CircularBuffer::pop(Chunk &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [&] { return count_ > 0 || closed_; });
    if (count_ == 0)
        return false;
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --count_;
    lock.unlock();
    notFull_.notify_one();
    return true;
}

void
CircularBuffer::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
}

size_t
CircularBuffer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

size_t
CircularBuffer::highWater() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return highWater_;
}

} // namespace cosmic::sys
