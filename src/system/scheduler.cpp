#include "system/scheduler.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace cosmic::sys {

JobScheduler::JobScheduler(SchedulerConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.totalNodes <= 0)
        COSMIC_FATAL("SchedulerConfig: totalNodes must be positive "
                     "(got " << cfg_.totalNodes << ")");
    if (cfg_.maxConcurrent <= 0)
        COSMIC_FATAL("SchedulerConfig: maxConcurrent must be positive "
                     "(got " << cfg_.maxConcurrent << ")");
    if (cfg_.maxQueued < 0)
        COSMIC_FATAL("SchedulerConfig: maxQueued must be >= 0 (got "
                     << cfg_.maxQueued << ")");
    if (cfg_.peThreadsPerNode < 0)
        COSMIC_FATAL("SchedulerConfig: peThreadsPerNode must be >= 0 "
                     "(got " << cfg_.peThreadsPerNode << ")");
    if (cfg_.peThreadsPerNode > 0 && cfg_.peRowsPerThread <= 0)
        COSMIC_FATAL("SchedulerConfig: peRowsPerThread must be "
                     "positive when carving (got "
                     << cfg_.peRowsPerThread << ")");
    freeNodes_ = cfg_.totalNodes;
    stats_.freeNodes = freeNodes_;
    workers_.reserve(static_cast<size_t>(cfg_.maxConcurrent));
    for (int i = 0; i < cfg_.maxConcurrent; ++i)
        workers_.emplace_back([this] { worker(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

uint64_t
JobScheduler::submit(JobSpec spec)
{
    // Resource carving happens here, before the Session ever sees the
    // spec, so a job's trajectory is a pure function of what the
    // Session is constructed with.
    ClusterConfig &cluster = spec.cluster;
    // Pin the math first: sgdShards defaults to the accelerator
    // thread count, so it must be fixed to the *requested* count
    // before any thread scaling — otherwise carving would change the
    // gradient fold and the trajectory with it.
    if (cluster.sgdShardsPerNode == 0)
        cluster.sgdShardsPerNode = cluster.acceleratorThreadsPerNode;
    if (cfg_.peThreadsPerNode > 0) {
        const int share = std::max(
            1, cfg_.peThreadsPerNode / cfg_.maxConcurrent);
        cluster.acceleratorThreadsPerNode =
            std::min(cluster.acceleratorThreadsPerNode, share);
        // Pin the planner to the carved sub-array unless the job
        // forced its own design point.
        if (cluster.compile.forceThreads <= 0 ||
            cluster.compile.forceRowsPerThread <= 0) {
            cluster.compile.forceThreads = share;
            cluster.compile.forceRowsPerThread = cfg_.peRowsPerThread;
        }
    }

    auto session = std::make_shared<Session>(std::move(spec));
    const JobSpec &final_spec = session->spec();

    std::string refusal;
    if (final_spec.cluster.nodes > cfg_.totalNodes) {
        std::ostringstream why;
        why << "job wants " << final_spec.cluster.nodes
            << " nodes but the cluster has " << cfg_.totalNodes;
        refusal = why.str();
    } else {
        try {
            final_spec.cluster.validate();
        } catch (const std::exception &e) {
            refusal = e.what();
        }
    }

    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        id = nextId_++;
        jobs_.emplace(id, session);
        ++stats_.submitted;
        if (refusal.empty() && stop_)
            refusal = "scheduler is shut down";
        if (refusal.empty() &&
            queue_.size() >= static_cast<size_t>(cfg_.maxQueued)) {
            std::ostringstream why;
            why << "queue full (" << queue_.size() << " waiting, max "
                << cfg_.maxQueued << ")";
            refusal = why.str();
        }
        if (refusal.empty()) {
            queue_.push_back({id, session, final_spec.cluster.nodes,
                              std::chrono::steady_clock::now()});
            stats_.peakQueueDepth =
                std::max(stats_.peakQueueDepth, queue_.size());
        } else {
            ++stats_.rejected;
        }
    }
    if (!refusal.empty())
        session->reject(refusal);
    else
        cv_.notify_all();
    return id;
}

void
JobScheduler::worker()
{
    for (;;) {
        Pending job;
        int nodes_held = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            // Strict FIFO: only the head may be admitted. A head that
            // has already been cancelled passes through without
            // waiting for (or holding) node slots.
            cv_.wait(lock, [&] {
                return stop_ ||
                       (!queue_.empty() &&
                        (queue_.front().nodes <= freeNodes_ ||
                         queue_.front().session->cancelRequested()));
            });
            if (stop_)
                return;
            if (queue_.empty() ||
                (queue_.front().nodes > freeNodes_ &&
                 !queue_.front().session->cancelRequested()))
                continue; // lost the race to a sibling worker
            job = std::move(queue_.front());
            queue_.pop_front();
            nodes_held =
                job.session->cancelRequested() ? 0 : job.nodes;
            freeNodes_ -= nodes_held;
            ++running_;
            ++stats_.admitted;
        }
        // Another head may have become admissible.
        cv_.notify_all();

        const double wait_sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - job.enqueued)
                .count();
        job.session->setQueueWait(wait_sec);
        try {
            job.session->run();
        } catch (const std::exception &) {
            // Recorded in the session's progress (Failed + message);
            // the scheduler keeps serving other tenants.
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            freeNodes_ += nodes_held;
            --running_;
            switch (job.session->progress().state) {
            case JobState::Done:
                ++stats_.completed;
                break;
            case JobState::Failed:
                ++stats_.failed;
                break;
            case JobState::Cancelled:
                ++stats_.cancelled;
                break;
            default:
                break;
            }
        }
        cv_.notify_all();
        idle_.notify_all();
    }
}

std::shared_ptr<Session>
JobScheduler::session(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

JobProgress
JobScheduler::progress(uint64_t id) const
{
    auto s = session(id);
    if (!s)
        COSMIC_FATAL("JobScheduler: unknown job id " << id);
    return s->progress();
}

bool
JobScheduler::cancel(uint64_t id)
{
    auto s = session(id);
    if (!s)
        return false;
    s->cancel();
    // A cancelled queue head no longer needs node slots — wake the
    // workers so it can pass through.
    cv_.notify_all();
    return true;
}

void
JobScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock,
               [&] { return queue_.empty() && running_ == 0; });
}

void
JobScheduler::shutdown()
{
    std::deque<Pending> abandoned;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ && workers_.empty())
            return;
        stop_ = true;
        abandoned.swap(queue_);
    }
    cv_.notify_all();
    // Ask running jobs to stop at their next iteration boundary so
    // the joins below terminate promptly.
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto &[id, s] : jobs_)
            s->cancel();
    }
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    for (auto &p : abandoned) {
        p.session->cancel();
        p.session->reject("scheduler shut down before admission");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected;
    }
    idle_.notify_all();
}

SchedulerStats
JobScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SchedulerStats snapshot = stats_;
    snapshot.runningNow = running_;
    snapshot.queuedNow = queue_.size();
    snapshot.freeNodes = freeNodes_;
    return snapshot;
}

} // namespace cosmic::sys
