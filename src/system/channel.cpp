#include "system/channel.h"

namespace cosmic::sys {

void
Channel::send(Message msg)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(msg));
    }
    available_.notify_one();
}

bool
Channel::receive(Message &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

bool
Channel::tryReceive(Message &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

bool
Channel::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !queue_.empty();
}

void
Channel::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    available_.notify_all();
}

} // namespace cosmic::sys
