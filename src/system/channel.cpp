#include "system/channel.h"

#include <chrono>
#include <thread>

#include "system/fault.h"

namespace cosmic::sys {

void
Channel::send(Message msg)
{
    bool duplicate = false;
    if (injector_) {
        FaultInjector::SendAction action =
            injector_->onSend(msg.from, owner_, msg.seq);
        if (action.delayMs > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    action.delayMs));
        if (action.drop)
            return; // the wire ate it
        duplicate = action.duplicate;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return; // sends after close are dropped (no receiver left)
        if (duplicate)
            queue_.push_back(msg); // deliberate copy: the dup fault
        queue_.push_back(std::move(msg));
    }
    if (duplicate)
        available_.notify_all();
    else
        available_.notify_one();
}

bool
Channel::receive(Message &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

RecvStatus
Channel::receiveFor(Message &out, double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    bool ready = available_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [&] { return !queue_.empty() || closed_; });
    if (!ready)
        return RecvStatus::Timeout;
    if (queue_.empty())
        return RecvStatus::Closed;
    out = std::move(queue_.front());
    queue_.pop_front();
    return RecvStatus::Ok;
}

bool
Channel::tryReceive(Message &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

bool
Channel::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !queue_.empty();
}

void
Channel::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    available_.notify_all();
}

} // namespace cosmic::sys
