#include "system/channel.h"

#include <algorithm>
#include <chrono>

namespace cosmic::sys {

void
Channel::send(Message msg)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return; // sends after close are dropped (no receiver left)
        queue_.push_back(std::move(msg));
    }
    available_.notify_one();
}

bool
Channel::receive(Message &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

RecvStatus
Channel::receiveFor(Message &out, double timeout_ms)
{
    // One absolute deadline, fixed before the first wait: a spurious
    // wakeup or a notify that loses the race to another consumer
    // re-enters wait_until with the *same* deadline, so the window can
    // only shrink — never restart (the wait_for variant this replaces
    // restarted a relative window on every predicate re-check path).
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(0.0, timeout_ms)));
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (!queue_.empty()) {
            out = std::move(queue_.front());
            queue_.pop_front();
            return RecvStatus::Ok;
        }
        if (closed_)
            return RecvStatus::Closed;
        if (available_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            if (!queue_.empty()) {
                out = std::move(queue_.front());
                queue_.pop_front();
                return RecvStatus::Ok;
            }
            return closed_ ? RecvStatus::Closed : RecvStatus::Timeout;
        }
    }
}

bool
Channel::tryReceive(Message &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

bool
Channel::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !queue_.empty();
}

void
Channel::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    available_.notify_all();
}

} // namespace cosmic::sys
