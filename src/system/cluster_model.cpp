#include "system/cluster_model.h"

#include <algorithm>

#include "common/error.h"
#include "system/director.h"

namespace cosmic::sys {

CosmicClusterModel::CosmicClusterModel(const ClusterModelConfig &config,
                                       int64_t model_bytes)
    : config_(config), modelBytes_(model_bytes)
{
    COSMIC_ASSERT(config_.nodes >= 1, "cluster needs nodes");
    groups_ = config_.groups > 0
                  ? config_.groups
                  : SystemDirector::defaultGroups(config_.nodes);
    COSMIC_ASSERT(groups_ <= config_.nodes, "more groups than nodes");
}

int
CosmicClusterModel::largestGroup() const
{
    return (config_.nodes + groups_ - 1) / groups_;
}

double
CosmicClusterModel::ingestSec(int flows, double &net_part,
                              double &agg_part) const
{
    if (flows <= 0)
        return 0.0;
    // The Sigma node's downlink serializes the incoming updates; the
    // aggregation pool folds chunks as they land in the circular
    // buffer, so the visible time is the larger of the two, plus the
    // per-flow dispatch costs and one link latency.
    double network = flows * modelBytes_ /
                         config_.host.nicBandwidthBytesPerSec +
                     flows * config_.perMessageOverheadSec +
                     config_.host.nicLatencySec;
    double aggregation = flows * modelBytes_ /
                         config_.aggThroughputBytesPerSec;
    net_part += network;
    agg_part += std::max(0.0, aggregation - network);
    return std::max(network, aggregation);
}

IterationBreakdown
CosmicClusterModel::iteration(double node_compute_sec) const
{
    IterationBreakdown b;
    b.computeSec = node_compute_sec;
    b.overheadSec = config_.perIterationOverheadSec;

    double net = 0.0;
    double agg = 0.0;

    // Level 1: every group's Sigma ingests its members in parallel
    // across groups — the largest group dominates.
    int members = largestGroup() - 1;
    ingestSec(members, net, agg);

    // Level 2: the master ingests the other group Sigmas.
    ingestSec(groups_ - 1, net, agg);

    // Broadcast: the master's uplink serializes the sends to the other
    // group Sigmas, then each Sigma fans out to its members (groups in
    // parallel).
    double bcast = 0.0;
    if (groups_ > 1) {
        bcast += (groups_ - 1) * modelBytes_ /
                     config_.host.nicBandwidthBytesPerSec +
                 config_.host.nicLatencySec;
    }
    if (members > 0) {
        bcast += members * modelBytes_ /
                     config_.host.nicBandwidthBytesPerSec +
                 config_.host.nicLatencySec;
    }
    net += bcast;

    b.networkSec = net;
    b.aggregationSec = agg;
    return b;
}

} // namespace cosmic::sys
