#include "system/training_node.h"

#include <algorithm>
#include <thread>

#include "common/error.h"

namespace cosmic::sys {

TrainingNode::TrainingNode(const dfg::Translation &translation,
                           ml::Dataset partition,
                           const NodeComputeConfig &config)
    : tr_(translation), partition_(std::move(partition)), config_(config)
{
    COSMIC_ASSERT(config_.acceleratorThreads > 0,
                  "node needs at least one worker thread");
    COSMIC_ASSERT(partition_.recordWords == tr_.recordWords,
                  "partition record width " << partition_.recordWords
                  << " does not match the program's " << tr_.recordWords);
    COSMIC_ASSERT(tr_.gradientWords == tr_.modelWords,
                  "local SGD requires one gradient element per model "
                  "parameter (declare gradients in model order)");
    for (int t = 0; t < config_.acceleratorThreads; ++t)
        interps_.push_back(std::make_unique<dfg::Interpreter>(tr_));
}

std::vector<double>
TrainingNode::computeLocalUpdate(const std::vector<double> &model,
                                 int64_t batch_records)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    const int workers = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    // Divide the batch into equal sub-partitions (Fig. 1), one per
    // worker thread; each worker performs plain SGD on a private model
    // copy (parallelized SGD, Eq. 3a).
    std::vector<std::vector<double>> worker_models(
        workers, std::vector<double>(model));
    std::vector<std::thread> threads;
    const int64_t per_worker = (batch_records + workers - 1) / workers;
    const double mu = config_.learningRate;

    for (int t = 0; t < workers; ++t) {
        threads.emplace_back([&, t] {
            auto &local = worker_models[t];
            std::vector<double> grad;
            int64_t first = cursor_ + t * per_worker;
            int64_t last = std::min<int64_t>(cursor_ + batch_records,
                                             first + per_worker);
            for (int64_t r = first; r < last; ++r) {
                int64_t idx = r % partition_.count;
                interps_[t]->run(partition_.record(idx), local, grad);
                for (int64_t i = 0; i < tr_.gradientWords; ++i)
                    local[i] -= mu * grad[i];
            }
        });
    }
    for (auto &th : threads)
        th.join();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // The accelerator's local aggregation across worker threads.
    std::vector<double> update(model.size(), 0.0);
    for (const auto &wm : worker_models)
        for (size_t i = 0; i < update.size(); ++i)
            update[i] += wm[i];
    for (auto &v : update)
        v /= workers;
    return update;
}

std::vector<double>
TrainingNode::computeGradientSum(const std::vector<double> &model,
                                 int64_t batch_records)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    const int workers = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    std::vector<std::vector<double>> worker_sums(
        workers, std::vector<double>(tr_.gradientWords, 0.0));
    std::vector<std::thread> threads;
    const int64_t per_worker = (batch_records + workers - 1) / workers;

    for (int t = 0; t < workers; ++t) {
        threads.emplace_back([&, t] {
            auto &sum = worker_sums[t];
            std::vector<double> grad;
            int64_t first = cursor_ + t * per_worker;
            int64_t last = std::min<int64_t>(cursor_ + batch_records,
                                             first + per_worker);
            for (int64_t r = first; r < last; ++r) {
                int64_t idx = r % partition_.count;
                interps_[t]->run(partition_.record(idx), model, grad);
                for (int64_t i = 0; i < tr_.gradientWords; ++i)
                    sum[i] += grad[i];
            }
        });
    }
    for (auto &th : threads)
        th.join();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // Local aggregation: plain summation over worker threads.
    std::vector<double> total(tr_.gradientWords, 0.0);
    for (const auto &ws : worker_sums)
        for (int64_t i = 0; i < tr_.gradientWords; ++i)
            total[i] += ws[i];
    return total;
}

} // namespace cosmic::sys
