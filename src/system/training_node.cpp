#include "system/training_node.h"

#include <algorithm>

#include "common/error.h"

namespace cosmic::sys {

TrainingNode::TrainingNode(const dfg::Translation &translation,
                           ml::Dataset partition,
                           const NodeComputeConfig &config)
    : tr_(translation), partition_(std::move(partition)),
      config_(config), tape_(tr_), pool_(config.acceleratorThreads)
{
    COSMIC_ASSERT(config_.acceleratorThreads > 0,
                  "node needs at least one worker thread");
    COSMIC_ASSERT(partition_.recordWords == tr_.recordWords,
                  "partition record width " << partition_.recordWords
                  << " does not match the program's " << tr_.recordWords);
    COSMIC_ASSERT(tr_.gradientWords == tr_.modelWords,
                  "local SGD requires one gradient element per model "
                  "parameter (declare gradients in model order)");
    workers_.resize(config_.acceleratorThreads);
    for (auto &w : workers_) {
        w.exec = std::make_unique<dfg::TapeExecutor>(tape_);
        w.model.resize(tr_.modelWords, 0.0);
        w.grad.resize(tr_.gradientWords, 0.0);
    }
}

template <typename Fn>
void
TrainingNode::forWorkerRecords(int t, int64_t batch_records, Fn &&fn)
{
    const int workers = config_.acceleratorThreads;
    const int64_t per_worker = (batch_records + workers - 1) / workers;
    int64_t first = cursor_ + t * per_worker;
    int64_t last = std::min<int64_t>(cursor_ + batch_records,
                                     first + per_worker);
    Worker &w = workers_[t];
    while (first < last) {
        int64_t start = first % partition_.count;
        int64_t n = std::min(last - first, partition_.count - start);
        fn(w, partition_.slice(start, n), n);
        first += n;
    }
}

std::vector<double>
TrainingNode::computeLocalUpdate(const std::vector<double> &model,
                                 int64_t batch_records)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    const int workers = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    // Divide the batch into equal sub-partitions (Fig. 1), one per
    // pool worker; each performs plain SGD on its preallocated private
    // model copy (parallelized SGD, Eq. 3a).
    const double mu = config_.learningRate;
    for (int t = 0; t < workers; ++t) {
        pool_.submit([this, t, &model, batch_records, mu] {
            std::copy(model.begin(), model.end(),
                      workers_[t].model.begin());
            forWorkerRecords(
                t, batch_records,
                [&](Worker &w, std::span<const double> records,
                    int64_t n) {
                    w.exec->sgdSweep(records, n, w.model, mu);
                });
        });
    }
    pool_.waitIdle();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // The accelerator's local aggregation across worker threads.
    std::vector<double> update(model.size(), 0.0);
    for (const auto &w : workers_)
        for (size_t i = 0; i < update.size(); ++i)
            update[i] += w.model[i];
    for (auto &v : update)
        v /= workers;
    return update;
}

std::vector<double>
TrainingNode::computeGradientSum(const std::vector<double> &model,
                                 int64_t batch_records)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    const int workers = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    for (int t = 0; t < workers; ++t) {
        pool_.submit([this, t, &model, batch_records] {
            std::fill(workers_[t].grad.begin(),
                      workers_[t].grad.end(), 0.0);
            forWorkerRecords(
                t, batch_records,
                [&](Worker &w, std::span<const double> records,
                    int64_t n) {
                    w.exec->runBatch(records, n, model, w.grad);
                });
        });
    }
    pool_.waitIdle();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // Local aggregation: plain summation over worker threads.
    std::vector<double> total(tr_.gradientWords, 0.0);
    for (const auto &w : workers_)
        for (int64_t i = 0; i < tr_.gradientWords; ++i)
            total[i] += w.grad[i];
    return total;
}

} // namespace cosmic::sys
