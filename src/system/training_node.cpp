#include "system/training_node.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "system/fault.h"

namespace cosmic::sys {

TrainingNode::TrainingNode(const dfg::Translation &translation,
                           ml::Dataset partition,
                           const NodeComputeConfig &config)
    : tr_(translation), partition_(std::move(partition)),
      config_(config), tape_(tr_, nullptr, config.tapeBackend),
      pool_(config.acceleratorThreads)
{
    COSMIC_ASSERT(config_.acceleratorThreads > 0,
                  "node needs at least one worker thread");
    COSMIC_ASSERT(config_.sgdShards >= 0,
                  "shard count cannot be negative");
    COSMIC_ASSERT(partition_.recordWords == tr_.recordWords,
                  "partition record width " << partition_.recordWords
                  << " does not match the program's " << tr_.recordWords);
    COSMIC_ASSERT(tr_.gradientWords == tr_.modelWords,
                  "local SGD requires one gradient element per model "
                  "parameter (declare gradients in model order)");
    shards_ = config_.sgdShards > 0 ? config_.sgdShards
                                    : config_.acceleratorThreads;
    workers_.resize(config_.acceleratorThreads);
    for (auto &w : workers_) {
        w.exec = std::make_unique<dfg::TapeExecutor>(tape_);
        w.grad.resize(tr_.gradientWords, 0.0);
    }
    shardModels_.resize(shards_);
    for (auto &m : shardModels_)
        m.resize(tr_.modelWords, 0.0);
}

int
TrainingNode::shardSegments(int s, int shard_count,
                            int64_t batch_records, Segment segs[2]) const
{
    const int64_t per =
        (batch_records + shard_count - 1) / shard_count;
    int64_t first = cursor_ + s * per;
    const int64_t last =
        std::min<int64_t>(cursor_ + batch_records, first + per);
    int count = 0;
    while (first < last && count < 2) {
        int64_t start = first % partition_.count;
        int64_t n = std::min(last - first, partition_.count - start);
        segs[count].records =
            partition_.data.data() + start * partition_.recordWords;
        segs[count].count = n;
        ++count;
        first += n;
    }
    return count;
}

void
TrainingNode::sweepShardRange(int t, int s0, int s1,
                              int64_t batch_records,
                              const std::vector<double> &model)
{
    Worker &w = workers_[t];
    const double mu = config_.learningRate;
    // Advance the owned shards in lane groups: the group's round-k
    // segments form the lanes of one multi-lane sweep. With the
    // classic one-shard-per-thread configuration the group has a
    // single lane and sgdSweepLanes degenerates to the scalar sweep —
    // either way, each shard's trajectory is bit-exact.
    for (int base = s0; base < s1; base += dfg::kMaxTapeLanes) {
        const int group =
            std::min<int>(dfg::kMaxTapeLanes, s1 - base);
        Segment segs[dfg::kMaxTapeLanes][2];
        int seg_count[dfg::kMaxTapeLanes];
        for (int i = 0; i < group; ++i) {
            std::copy(model.begin(), model.end(),
                      shardModels_[base + i].begin());
            seg_count[i] = shardSegments(base + i, shards_,
                                         batch_records, segs[i]);
        }
        for (int round = 0; round < 2; ++round) {
            dfg::TapeExecutor::SweepLane lanes[dfg::kMaxTapeLanes];
            int n = 0;
            for (int i = 0; i < group; ++i) {
                if (round >= seg_count[i])
                    continue;
                lanes[n].records = segs[i][round].records;
                lanes[n].count = segs[i][round].count;
                lanes[n].model = shardModels_[base + i].data();
                ++n;
            }
            if (n > 0)
                w.exec->sgdSweepLanes({lanes, static_cast<size_t>(n)},
                                      mu);
        }
    }
}

void
TrainingNode::maybeStall()
{
    const uint64_t iteration = iteration_++;
    if (!injector_)
        return;
    double ms = injector_->stragglerDelayMs(nodeId_, iteration);
    if (ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

void
TrainingNode::computeLocalUpdate(const std::vector<double> &model,
                                 int64_t batch_records,
                                 std::vector<double> &update)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    maybeStall();
    const int threads = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    // Divide the batch into equal sub-partitions (Fig. 1), one per SGD
    // shard; each shard performs plain SGD on its preallocated private
    // model copy (parallelized SGD, Eq. 3a). Threads own contiguous
    // shard groups and drive them through tape lanes.
    const int per_thread = (shards_ + threads - 1) / threads;
    for (int t = 0; t < threads; ++t) {
        const int s0 = t * per_thread;
        const int s1 = std::min(shards_, s0 + per_thread);
        if (s0 >= s1)
            break;
        pool_.submit([this, t, s0, s1, batch_records, &model] {
            sweepShardRange(t, s0, s1, batch_records, model);
        });
    }
    pool_.waitIdle();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // The accelerator's local aggregation across SGD shards.
    update.assign(model.size(), 0.0);
    for (const auto &m : shardModels_)
        for (size_t i = 0; i < update.size(); ++i)
            update[i] += m[i];
    for (auto &v : update)
        v /= shards_;
}

void
TrainingNode::computeGradientSum(const std::vector<double> &model,
                                 int64_t batch_records,
                                 std::vector<double> &grad)
{
    COSMIC_ASSERT(static_cast<int64_t>(model.size()) == tr_.modelWords,
                  "model width mismatch");
    maybeStall();
    const int workers = config_.acceleratorThreads;
    batch_records = std::min<int64_t>(batch_records, partition_.count);

    for (int t = 0; t < workers; ++t) {
        pool_.submit([this, t, workers, &model, batch_records] {
            Worker &w = workers_[t];
            std::fill(w.grad.begin(), w.grad.end(), 0.0);
            Segment segs[2];
            const int n = shardSegments(t, workers, batch_records,
                                        segs);
            for (int i = 0; i < n; ++i)
                w.exec->runBatch(
                    {segs[i].records,
                     static_cast<size_t>(segs[i].count *
                                         partition_.recordWords)},
                    segs[i].count, model, w.grad);
        });
    }
    pool_.waitIdle();
    cursor_ = (cursor_ + batch_records) % partition_.count;
    recordsProcessed_ += batch_records;

    // Local aggregation: plain summation over worker threads.
    grad.assign(tr_.gradientWords, 0.0);
    for (const auto &w : workers_)
        for (int64_t i = 0; i < tr_.gradientWords; ++i)
            grad[i] += w.grad[i];
}

} // namespace cosmic::sys
