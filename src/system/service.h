/**
 * @file
 * The cosmicd front door: training-as-a-service over the wire.
 *
 * ServiceFrontDoor listens on a TCP endpoint and speaks the existing
 * versioned wire protocol (net/wire.h) with the service msgKinds:
 *
 *   client -> server                server -> client
 *   ----------------                ----------------
 *   SubmitJob  spec text            JobStatus  (ack: Queued/Rejected)
 *   JobStatus  seq=id, empty        JobStatus  snapshot
 *   JobStatus  seq=id, contrib=1    JobStatus  stream until terminal
 *   JobResult  seq=id, empty        JobResult  final model, or
 *                                   JobStatus  when not Done
 *   CancelJob  seq=id               JobStatus  snapshot
 *
 * A JobStatus reply encodes the snapshot as 5 payload words —
 * [epochsDone, totalEpochs, lastLoss, queueWaitSec, iterations] —
 * with the JobState in `contributors`, the job id in `seq`, and the
 * failure text (when any) packed after the status words with its byte
 * length in `offset`. A JobResult reply carries the final model as an
 * F64 payload. Submissions ride as packText'd JobSpec::toText().
 *
 * The streaming form (`contributors = 1` on a JobStatus request)
 * subscribes the connection to the session's progress sink: every
 * state transition and epoch completion is pushed as a JobStatus
 * frame, ending with the terminal snapshot. Other requests on the
 * same connection stay valid — writes are serialized per connection.
 *
 * Behind the door sits a JobScheduler (scheduler.h): admission,
 * FIFO + max-concurrency, node-slot partitioning, and the shared
 * BuildCache that deduplicates compiles across tenants.
 *
 * ServiceClient is the matching blocking client used by `cosmicd
 * --submit`, tests and the service benchmark.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "system/scheduler.h"

namespace cosmic::sys {

/**
 * Accepts service connections and routes them to a JobScheduler.
 * Construct with the scheduler's resource budget and a "host:port"
 * endpoint (port 0 binds an ephemeral port — read it back with
 * port()). The destructor stops the listener, joins every handler,
 * and shuts the scheduler down.
 */
class ServiceFrontDoor
{
  public:
    ServiceFrontDoor(const SchedulerConfig &cfg,
                     const std::string &endpoint);
    ~ServiceFrontDoor();

    ServiceFrontDoor(const ServiceFrontDoor &) = delete;
    ServiceFrontDoor &operator=(const ServiceFrontDoor &) = delete;

    /** The bound port (resolves an ephemeral bind). */
    uint16_t port() const { return port_; }

    /** Direct access for in-process observation (stats, drain). */
    JobScheduler &scheduler() { return scheduler_; }

    /** Stops accepting, closes every connection, joins handlers, and
     *  shuts the scheduler down. Idempotent. */
    void stop();

  private:
    struct Connection;

    void acceptLoop();
    void handle(std::shared_ptr<Connection> conn);

    JobScheduler scheduler_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptor_;

    std::mutex mu_;
    bool stopping_ = false;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> handlers_;
};

/**
 * Blocking client for one ServiceFrontDoor connection. Synchronous
 * request/response; not thread-safe (one conversation per client).
 * All calls throw CosmicError on protocol or connection errors.
 */
class ServiceClient
{
  public:
    /** Connects to "host:port". */
    explicit ServiceClient(const std::string &endpoint);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Submits a job; returns its id. The ack snapshot (Queued or
     *  Rejected-with-reason) lands in @p ack when given. */
    uint64_t submit(const JobSpec &spec, JobProgress *ack = nullptr);

    /** One status snapshot. */
    JobProgress status(uint64_t id);

    /**
     * Streams progress until the job reaches a terminal state
     * (Done/Failed/Cancelled/Rejected); returns the terminal
     * snapshot. @p onProgress (optional) sees every pushed frame.
     */
    JobProgress
    wait(uint64_t id,
         const std::function<void(const JobProgress &)> &onProgress =
             nullptr);

    /** Requests cancellation; returns the post-cancel snapshot. */
    JobProgress cancel(uint64_t id);

    /** Fetches a Done job's final model. Throws when the job is not
     *  Done (the failure snapshot's error is in the message). */
    std::vector<double> result(uint64_t id);

  private:
    void send(const sys::Message &msg);
    sys::Message recv();

    int fd_ = -1;
    std::vector<uint8_t> rxbuf_;
};

} // namespace cosmic::sys
