/**
 * @file
 * Regenerates paper Figure 10: computation-only speedup over the FPGA
 * (system software excluded).
 *
 * Paper reference: P-ASIC-F 1.5x, P-ASIC-G 11.4x, GPU 1.9x on average;
 * the GPU wins big only on the backpropagation benchmarks (20.3x on
 * mnist, 12.8x on acoustic) whose batched matrix-matrix products it
 * executes at high utilization; P-ASIC-F's higher frequency alone does
 * not help the bandwidth-bound benchmarks.
 */
#include <iostream>
#include <vector>

#include "baselines/gpu_model.h"
#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

namespace {

/** Per-node compute time for one mini-batch (no cluster terms). */
double
accelComputeSec(const bench::WorkloadSummary &s, int64_t records)
{
    accel::PerfEstimator perf(s.perf);
    return perf.batchTime(records).computeSec;
}

} // namespace

int
main()
{
    const int64_t b = bench::kDefaultMinibatch;
    const int nodes = 3;
    auto fpga = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());
    auto pasic_f = bench::buildSuite(accel::PlatformSpec::pasicF());
    auto pasic_g = bench::buildSuite(accel::PlatformSpec::pasicG());
    baselines::GpuNodeModel gpu;

    TablePrinter table("Figure 10: Computation speedup over FPGA");
    table.setHeader({"Benchmark", "P-ASIC-F", "P-ASIC-G", "GPU"});

    std::vector<double> f_sp, g_sp, gpu_sp;
    for (size_t i = 0; i < fpga.size(); ++i) {
        const auto &w = ml::Workload::byName(fpga[i].workload);
        double base = accelComputeSec(fpga[i], b);
        double tf = accelComputeSec(pasic_f[i], b);
        double tg = accelComputeSec(pasic_g[i], b);
        double tgpu = gpu.batchSeconds(
            w.algorithm, b, fpga[i].flopsPerRecord,
            fpga[i].bytesPerRecord, fpga[i].modelBytes,
            w.dataGB * 1e9 / nodes);
        f_sp.push_back(base / tf);
        g_sp.push_back(base / tg);
        gpu_sp.push_back(base / tgpu);
        table.addRow({fpga[i].workload,
                      TablePrinter::num(base / tf, 2),
                      TablePrinter::num(base / tg, 2),
                      TablePrinter::num(base / tgpu, 2)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(f_sp), 2),
                  TablePrinter::num(geomean(g_sp), 2),
                  TablePrinter::num(geomean(gpu_sp), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference averages: P-ASIC-F 1.5x, P-ASIC-G "
              << "11.4x, GPU 1.9x (mnist 20.3x, acoustic 12.8x).\n";
    return 0;
}
