/**
 * @file
 * Regenerates paper Figure 11: performance-per-Watt of the three-node
 * FPGA and P-ASIC systems relative to the 3-GPU system.
 *
 * Paper reference: FPGA 4.2x, P-ASIC-F 6.9x, P-ASIC-G 8.2x higher
 * performance-per-Watt than the GPU system.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    const int nodes = 3;
    const accel::HostSpec host;
    auto fpga_p = accel::PlatformSpec::ultrascalePlus();
    auto pf_p = accel::PlatformSpec::pasicF();
    auto pg_p = accel::PlatformSpec::pasicG();

    auto fpga = bench::buildSuite(fpga_p);
    auto pasic_f = bench::buildSuite(pf_p);
    auto pasic_g = bench::buildSuite(pg_p);

    // System power: every node pairs a Xeon host with its accelerator.
    double w_fpga = nodes * (host.cpuTdpWatts + fpga_p.tdpWatts);
    double w_pf = nodes * (host.cpuTdpWatts + pf_p.tdpWatts);
    double w_pg = nodes * (host.cpuTdpWatts + pg_p.tdpWatts);
    double w_gpu = nodes * (host.cpuTdpWatts + host.gpuTdpWatts);

    TablePrinter table("Figure 11: Performance-per-Watt relative to the "
                       "3-GPU system");
    table.setHeader({"Benchmark", "3-FPGA", "3-P-ASIC-F", "3-P-ASIC-G"});

    std::vector<double> r_fpga, r_pf, r_pg;
    for (size_t i = 0; i < fpga.size(); ++i) {
        const auto &w = ml::Workload::byName(fpga[i].workload);
        auto perf = [&](const bench::WorkloadSummary &s) {
            return bench::cosmicEstimate(s, nodes,
                                         bench::kDefaultMinibatch,
                                         w.numVectors)
                .recordsPerSecond;
        };
        double gpu_perf = bench::gpuEstimate(fpga[i], w, nodes,
                                             bench::kDefaultMinibatch,
                                             w.numVectors)
                              .recordsPerSecond;
        double gpu_ppw = gpu_perf / w_gpu;
        double fpga_r = perf(fpga[i]) / w_fpga / gpu_ppw;
        double pf_r = perf(pasic_f[i]) / w_pf / gpu_ppw;
        double pg_r = perf(pasic_g[i]) / w_pg / gpu_ppw;
        r_fpga.push_back(fpga_r);
        r_pf.push_back(pf_r);
        r_pg.push_back(pg_r);
        table.addRow({fpga[i].workload, TablePrinter::num(fpga_r, 2),
                      TablePrinter::num(pf_r, 2),
                      TablePrinter::num(pg_r, 2)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(r_fpga), 2),
                  TablePrinter::num(geomean(r_pf), 2),
                  TablePrinter::num(geomean(r_pg), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference averages: FPGA 4.2x, P-ASIC-F 6.9x, "
              << "P-ASIC-G 8.2x.\n";
    return 0;
}
