/**
 * @file
 * Micro-benchmarks (google-benchmark) of the stack's building blocks:
 * DSL parsing, translation, mapping, scheduling, interpretation, and
 * the system-software primitives. These are wall-clock measurements of
 * the library itself, not paper figures.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "compiler/pipeline.h"
#include "dfg/interp.h"
#include "dfg/rewrite.h"
#include "dfg/tape.h"
#include "jit/kernel_cache.h"
#include "ml/dataset.h"
#include "ml/workloads.h"
#include "planner/planner.h"
#include "system/aggregation.h"
#include "system/circular_buffer.h"
#include "system/thread_pool.h"

using namespace cosmic;

namespace {

const ml::Workload &
faceWorkload()
{
    return ml::Workload::byName("face");
}

void
BM_DslParse(benchmark::State &state)
{
    std::string src = faceWorkload().dslSource();
    for (auto _ : state) {
        compile::Pipeline pipeline(src);
        benchmark::DoNotOptimize(&pipeline.parsed());
    }
    state.SetBytesProcessed(state.iterations() * src.size());
}
BENCHMARK(BM_DslParse);

void
BM_Frontend(benchmark::State &state)
{
    // Parse + translate + DFG passes, uncached (the cache would turn
    // every iteration after the first into a lookup).
    std::string src = faceWorkload().dslSource(state.range(0));
    for (auto _ : state) {
        auto tr = compile::translateSource(src);
        benchmark::DoNotOptimize(&tr);
        state.counters["nodes"] = static_cast<double>(tr.dfg.size());
    }
}
BENCHMARK(BM_Frontend)->Arg(1)->Arg(8);

void
BM_FrontendCacheHit(benchmark::State &state)
{
    // Warm-cache frontend: one lookup in the content-hashed build
    // cache instead of a parse + translate + passes run.
    std::string src = faceWorkload().dslSource(8);
    compile::translateCached(src);
    for (auto _ : state) {
        auto frontend = compile::translateCached(src);
        benchmark::DoNotOptimize(frontend.get());
    }
}
BENCHMARK(BM_FrontendCacheHit);

void
BM_BuildCacheHit(benchmark::State &state)
{
    // Warm-cache full build (frontend + plan + map + tape).
    auto platform = accel::PlatformSpec::ultrascalePlus();
    std::string src = faceWorkload().dslSource(8);
    compile::buildCached(src, platform);
    for (auto _ : state) {
        auto build = compile::buildCached(src, platform);
        benchmark::DoNotOptimize(build.get());
    }
}
BENCHMARK(BM_BuildCacheHit);

void
BM_MapDataFirst(benchmark::State &state)
{
    auto tr = compile::translateSource(faceWorkload().dslSource());
    auto plan = planner::Planner::makePlan(
        tr, accel::PlatformSpec::ultrascalePlus(), 4,
        static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto m = compiler::Mapper::map(
            tr.dfg, plan, compiler::MappingStrategy::DataFirst);
        benchmark::DoNotOptimize(&m);
    }
    state.SetItemsProcessed(state.iterations() *
                            tr.dfg.operationCount());
}
BENCHMARK(BM_MapDataFirst)->Arg(2)->Arg(12);

void
BM_Schedule(benchmark::State &state)
{
    auto tr = compile::translateSource(faceWorkload().dslSource());
    auto plan = planner::Planner::makePlan(
        tr, accel::PlatformSpec::ultrascalePlus(), 4,
        static_cast<int>(state.range(0)));
    auto mapping = compiler::Mapper::map(
        tr.dfg, plan, compiler::MappingStrategy::DataFirst);
    compiler::InterconnectModel bus(compiler::BusKind::Hierarchical,
                                    plan.columns, plan.rowsPerThread);
    for (auto _ : state) {
        auto sched = compiler::Scheduler::schedule(tr.dfg, mapping, bus);
        benchmark::DoNotOptimize(&sched);
    }
    state.SetItemsProcessed(state.iterations() *
                            tr.dfg.operationCount());
}
BENCHMARK(BM_Schedule)->Arg(2)->Arg(12);

void
BM_InterpretRecord(benchmark::State &state)
{
    const auto &w = faceWorkload();
    auto tr = compile::translateSource(w.dslSource());
    dfg::Interpreter interp(tr);
    Rng rng(1);
    auto ds = ml::DatasetGenerator::generate(w, 1.0, 4, rng);
    auto model = ml::DatasetGenerator::initialModel(w, 1.0, rng);
    std::vector<double> grad;
    int64_t r = 0;
    for (auto _ : state) {
        interp.run(ds.record(r++ % ds.count), model, grad);
        benchmark::DoNotOptimize(grad.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            tr.dfg.operationCount());
}
BENCHMARK(BM_InterpretRecord);

void
BM_CircularBuffer(benchmark::State &state)
{
    sys::CircularBuffer ring(64);
    std::vector<double> payload(1024, 1.0);
    sys::Chunk chunk{0, 0, payload.data(),
                     static_cast<int64_t>(payload.size()), -1};
    for (auto _ : state) {
        ring.push(chunk);
        sys::Chunk out;
        ring.pop(out);
        benchmark::DoNotOptimize(out.values);
    }
    state.SetBytesProcessed(state.iterations() * 1024 * 8);
}
BENCHMARK(BM_CircularBuffer);

void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    sys::ThreadPool pool(2);
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            pool.submit([] {});
        pool.waitIdle();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolDispatch);

void
BM_AggregationRound(benchmark::State &state)
{
    sys::AggregationConfig config;
    sys::AggregationEngine engine(config);
    const int senders = 4;
    const int64_t words = state.range(0);
    std::vector<double> payload(words, 1.0);
    for (auto _ : state) {
        engine.begin(words, 0);
        for (int s = 0; s < senders; ++s)
            engine.onMessage(sys::Message{s, 0, payload});
        auto sum = engine.finish();
        benchmark::DoNotOptimize(sum.data());
    }
    state.SetBytesProcessed(state.iterations() * senders * words * 8);
}
BENCHMARK(BM_AggregationRound)->Arg(4096)->Arg(65536);

void
BM_RewriteFixpoint(benchmark::State &state)
{
    // The rewrite stage alone: fixpoint over a fresh copy of the raw
    // graph each iteration (every enabled pattern, default budget).
    auto raw = compile::translateSource(
        faceWorkload().dslSource(state.range(0)),
        compiler::CompileOptions{}.withDfgPasses(false));
    for (auto _ : state) {
        auto tr = raw;
        auto outcome = dfg::rewriteFixpoint(tr);
        benchmark::DoNotOptimize(&outcome);
        state.counters["sweeps"] = static_cast<double>(outcome.sweeps);
        state.counters["hits"] =
            static_cast<double>(outcome.totalHits());
    }
    state.SetItemsProcessed(state.iterations() * raw.dfg.size());
}
BENCHMARK(BM_RewriteFixpoint)->Arg(1)->Arg(8);

void
BM_JitAcquireWarm(benchmark::State &state)
{
    // Warm-path cost of the native-kernel cache: re-emit the C source,
    // hash it, and hit the in-memory kernel map. The first call pays
    // the one-off cold compile (or a disk dlopen if a previous run left
    // the .so behind); every timed iteration after that is a lookup.
    if (!jit::KernelCache::toolchainAvailable()) {
        state.SkipWithError("no jit toolchain");
        return;
    }
    auto tr = compile::translateSource(faceWorkload().dslSource(8));
    dfg::Tape tape(tr);
    jit::KernelCache::instance().acquire(tape, 8);
    for (auto _ : state) {
        auto kernel = jit::KernelCache::instance().acquire(tape, 8);
        benchmark::DoNotOptimize(kernel.get());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JitAcquireWarm);

/**
 * One JSON line per Table 1 workload: rewrite-stage compile time
 * against the legacy path, the tape-length delta the patterns buy,
 * and the per-pattern hit counters. CI greps these into
 * BENCH_hotpath.json next to the hot-path tape numbers.
 */
void
reportRewriteStage()
{
    using clock = std::chrono::steady_clock;
    const double scale = 16.0;
    for (const auto &w : ml::Workload::suite()) {
        auto src = w.dslSource(scale);

        auto t0 = clock::now();
        compile::PipelineReport report;
        auto optimized = compile::translateSource(src, {}, &report);
        auto t1 = clock::now();
        compiler::CompileOptions legacy_options;
        legacy_options.useRewritePatterns = false;
        auto legacy = compile::translateSource(src, legacy_options);
        (void)legacy;
        auto t2 = clock::now();
        auto raw = compile::translateSource(
            src, compiler::CompileOptions{}.withDfgPasses(false));

        auto ms = [](clock::time_point a, clock::time_point b) {
            return std::chrono::duration<double, std::milli>(b - a)
                .count();
        };
        dfg::Tape raw_tape(raw, nullptr, dfg::TapeBackend::Interp);
        dfg::Tape opt_tape(optimized, nullptr,
                           dfg::TapeBackend::Interp);

        std::string hits;
        for (const auto &p : report.patternHits) {
            if (!hits.empty())
                hits += ",";
            hits += "\"" + p.name +
                    "\":" + std::to_string(p.hits);
        }
        std::printf(
            "{\"bench\":\"rewrite\",\"workload\":\"%s\","
            "\"compile_ms_patterns\":%.3f,\"compile_ms_legacy\":%.3f,"
            "\"tape_len_raw\":%lld,\"tape_len_opt\":%lld,"
            "\"sweeps\":%d,\"pattern_hits\":{%s}}\n",
            w.name.c_str(), ms(t0, t1), ms(t1, t2),
            static_cast<long long>(raw_tape.instructions().size()),
            static_cast<long long>(opt_tape.instructions().size()),
            report.rewriteSweeps, hits.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    reportRewriteStage();

    // One consolidated line per cache so CI logs show how much of the
    // run above was served from the build stack's caches.
    const auto stats = compile::BuildCache::instance().stats();
    std::printf("build-cache: hits=%lld misses=%lld entries=%lld\n",
                static_cast<long long>(stats.hits),
                static_cast<long long>(stats.misses),
                static_cast<long long>(stats.entries));
    std::printf("jit-cache: hits=%lld disk_hits=%lld misses=%lld "
                "compile_ms=%.1f fallbacks=%lld\n",
                static_cast<long long>(stats.jitHits),
                static_cast<long long>(stats.jitDiskHits),
                static_cast<long long>(stats.jitMisses), stats.jitCompileMs,
                static_cast<long long>(stats.jitFallbacks));
    return 0;
}
