/**
 * @file
 * Training hot-path throughput: interpreter vs compiled tape executor,
 * with a lane-width sweep of the multi-lane (SIMD-across-records)
 * batch path.
 *
 * Measures single-thread records/sec of the per-record gradient kernel
 * for all 10 Table-1 workloads — the node-order Interpreter against the
 * Tape's flat instruction stream at lane widths 1 (scalar), 4 and 8 —
 * and times one functional-runtime iteration to show the
 * persistent-worker system layer end to end, with and without SGD
 * shards driving the multi-lane sweep path.
 *
 * The last two lines of output are machine-readable JSON summaries so
 * future PRs can track the perf trajectory:
 *   {"bench":"hotpath_tape","scale":...,"results":[{"workload":...,
 *    "interp_rps":...,"tape_rps":...,"lane4_rps":...,"lane8_rps":...,
 *    "speedup":...,"lane_speedup":...},...],"iteration":{...},
 *    "iteration_lanes":{...}}
 *   {"bench":"jit","scale":...,"results":[{"workload":...,
 *    "lane8_rps":...,"jit_rps":...,"jit_speedup":...},...],
 *    "toolchain":...,"stats":{...}}
 *
 * Targets: >= 3x tape-over-interpreter (ISSUE 1), >= 1.5x
 * lanes-over-scalar-tape (ISSUE 2) and >= 2x jit-over-lane-8-tape
 * (ISSUE 7) single-thread throughput on the linear- and
 * logistic-regression workloads (stock, texture, tumor, cancer1).
 */
#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_support.h"
#include "common/rng.h"
#include "common/table.h"
#include "compiler/pipeline.h"
#include "dfg/interp.h"
#include "dfg/tape.h"
#include "jit/kernel_cache.h"
#include "ml/dataset.h"
#include "ml/workloads.h"
#include "system/cluster_runtime.h"

using namespace cosmic;

namespace {

/** Runs @p body repeatedly until ~minSeconds elapsed; returns
 *  records/sec (body processes @p records records per call). */
double
measureRps(int64_t records, const std::function<void()> &body,
           double min_seconds = 0.2)
{
    // Warm-up pass (touches every buffer, trains the branch predictor).
    body();
    int64_t reps = 0;
    auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        body();
        ++reps;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    return static_cast<double>(records) * reps / elapsed;
}

/** Best of three measurements: scheduling noise only ever slows a
 *  run down, so the max is the stable estimate of attainable
 *  throughput (this box shares its single core with the world). */
double
measureBestRps(int64_t records, const std::function<void()> &body)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep)
        best = std::max(best, measureRps(records, body));
    return best;
}

/** Average per-iteration seconds / records-per-second of one run. */
struct IterationSummary
{
    double iterSec = 0.0;
    double aggSec = 0.0;
    double rps = 0.0;
};

IterationSummary
measureIteration(sys::ClusterRuntime &runtime)
{
    auto report = runtime.train(2);
    IterationSummary s;
    for (size_t i = 0; i < report.iterationSeconds.size(); ++i) {
        s.iterSec += report.iterationSeconds[i];
        s.aggSec += report.aggregationWaitSeconds[i];
        s.rps += report.recordsPerSecond[i];
    }
    size_t iters = report.iterationSeconds.size();
    s.iterSec /= iters;
    s.aggSec /= iters;
    s.rps /= iters;
    return s;
}

} // namespace

int
main()
{
    const double scale = 8.0;
    const int64_t records = 256;

    const bool have_toolchain = jit::KernelCache::toolchainAvailable();
    TablePrinter table("Training hot path: single-thread records/sec, "
                       "interpreter vs tape lane widths vs jit (scale 1/" +
                       std::to_string(static_cast<int>(scale)) + ")");
    table.setHeader({"Benchmark", "Algorithm", "DFG ops",
                     "Interp rec/s", "Tape W=1", "Tape W=4", "Tape W=8",
                     "JIT W=8", "Tape x", "Lane x", "JIT x"});

    std::ostringstream json;
    json << "{\"bench\":\"hotpath_tape\",\"scale\":" << scale
         << ",\"records\":" << records << ",\"results\":[";
    std::ostringstream jit_json;
    jit_json << "{\"bench\":\"jit\",\"scale\":" << scale
             << ",\"records\":" << records << ",\"results\":[";

    bool tape_ok = true;
    bool lanes_ok = true;
    bool jit_ok = true;
    bool first = true;
    int64_t frontend_passes = 0;
    int64_t dfg_passes = 0;
    for (const auto &w : ml::Workload::suite()) {
        auto frontend = compile::translateCached(w.dslSource(scale));
        const auto &tr = frontend->translation;
        frontend_passes +=
            static_cast<int64_t>(frontend->report.passes.size());
        dfg_passes += frontend->report.dfgPassCount();

        Rng rng(99);
        auto ds = ml::DatasetGenerator::generate(w, scale, records,
                                                 rng);
        auto model =
            ml::DatasetGenerator::initialModel(w, scale, rng);

        dfg::Interpreter interp(tr);
        dfg::Tape tape(tr);
        dfg::TapeExecutor exec(tape);
        std::vector<double> grad;
        std::vector<double> grad_accum(tr.gradientWords, 0.0);

        double interp_rps = measureBestRps(records, [&] {
            for (int64_t r = 0; r < records; ++r)
                interp.run(ds.record(r), model, grad);
        });
        auto tape_rps_at = [&](int width) {
            exec.setLaneWidth(width);
            return measureBestRps(records, [&] {
                exec.runBatch(ds.data, records, model, grad_accum);
            });
        };
        double tape_rps = tape_rps_at(1);
        double lane4_rps = tape_rps_at(4);
        double lane8_rps = tape_rps_at(8);

        // Same batch through the native backend; oversized tapes and
        // missing toolchains degrade to the interpreter path, so the
        // column stays honest (speedup ~1x, fallback counted).
        dfg::Tape jit_tape(tr, nullptr, dfg::TapeBackend::Jit);
        dfg::TapeExecutor jit_exec(jit_tape);
        jit_exec.setLaneWidth(8);
        double jit_rps = measureBestRps(records, [&] {
            jit_exec.runBatch(ds.data, records, model, grad_accum);
        });
        const bool jit_native = jit_exec.nativeActive();

        double speedup = tape_rps / interp_rps;
        double lane_speedup =
            std::max(lane4_rps, lane8_rps) / tape_rps;
        double jit_speedup = jit_rps / lane8_rps;

        bool is_regression =
            w.algorithm == ml::Algorithm::LinearRegression ||
            w.algorithm == ml::Algorithm::LogisticRegression;
        if (is_regression && speedup < 3.0)
            tape_ok = false;
        if (is_regression && lane_speedup < 1.5)
            lanes_ok = false;
        if (is_regression && have_toolchain && jit_speedup < 2.0)
            jit_ok = false;

        table.addRow({w.name, ml::algorithmName(w.algorithm),
                      std::to_string(tr.dfg.operationCount()),
                      TablePrinter::num(interp_rps, 0),
                      TablePrinter::num(tape_rps, 0),
                      TablePrinter::num(lane4_rps, 0),
                      TablePrinter::num(lane8_rps, 0),
                      jit_native ? TablePrinter::num(jit_rps, 0)
                                 : "(interp)",
                      TablePrinter::num(speedup, 2),
                      TablePrinter::num(lane_speedup, 2),
                      TablePrinter::num(jit_speedup, 2)});

        json << (first ? "" : ",") << "{\"workload\":\"" << w.name
             << "\",\"interp_rps\":" << TablePrinter::num(interp_rps, 0)
             << ",\"tape_rps\":" << TablePrinter::num(tape_rps, 0)
             << ",\"lane4_rps\":" << TablePrinter::num(lane4_rps, 0)
             << ",\"lane8_rps\":" << TablePrinter::num(lane8_rps, 0)
             << ",\"speedup\":" << TablePrinter::num(speedup, 3)
             << ",\"lane_speedup\":"
             << TablePrinter::num(lane_speedup, 3) << "}";
        jit_json << (first ? "" : ",") << "{\"workload\":\"" << w.name
                 << "\",\"lane8_rps\":" << TablePrinter::num(lane8_rps, 0)
                 << ",\"jit_rps\":" << TablePrinter::num(jit_rps, 0)
                 << ",\"native\":" << (jit_native ? "true" : "false")
                 << ",\"jit_speedup\":"
                 << TablePrinter::num(jit_speedup, 3) << "}";
        first = false;
    }
    table.print(std::cout);
    std::cout << "\nTargets on the linear/logistic-regression "
              << "workloads: tape >= 3x interpreter — "
              << (tape_ok ? "MET" : "NOT MET")
              << "; lanes >= 1.5x scalar tape — "
              << (lanes_ok ? "MET" : "NOT MET")
              << "; jit >= 2x lane-8 tape — "
              << (!have_toolchain ? "SKIPPED (no toolchain)"
                  : jit_ok        ? "MET"
                                  : "NOT MET")
              << "\n";

    // One functional-runtime iteration: the persistent-worker system
    // layer (tape executors fed through the nodes' thread pools),
    // then the same cluster with 8 SGD shards per node so each
    // accelerator thread drives a multi-lane sweep.
    sys::ClusterConfig cfg = bench::smallCluster(4, 64, 256);
    auto runtime = bench::makeRuntime("tumor", scale, cfg);
    auto base = measureIteration(*runtime);

    sys::ClusterConfig lane_cfg = cfg;
    lane_cfg.sgdShardsPerNode = 8;
    auto lane_runtime = bench::makeRuntime("tumor", scale, lane_cfg);
    auto lanes = measureIteration(*lane_runtime);

    std::cout << "\nCluster iteration (tumor, 4 nodes, b=64): "
              << TablePrinter::num(base.iterSec * 1e3, 3)
              << " ms/iter, " << TablePrinter::num(base.rps, 0)
              << " records/sec, "
              << TablePrinter::num(base.aggSec * 1e3, 3)
              << " ms aggregation wait\n"
              << "Cluster iteration (8 SGD shards/node):   "
              << TablePrinter::num(lanes.iterSec * 1e3, 3)
              << " ms/iter, " << TablePrinter::num(lanes.rps, 0)
              << " records/sec, "
              << TablePrinter::num(lanes.aggSec * 1e3, 3)
              << " ms aggregation wait\n\n";

    auto cache_stats = compile::BuildCache::instance().stats();
    json << "],\"pipeline\":{\"frontend_passes\":" << frontend_passes
         << ",\"dfg_passes\":" << dfg_passes
         << ",\"cache_hits\":" << cache_stats.hits
         << ",\"cache_misses\":" << cache_stats.misses << "}"
         << ",\"iteration\":{\"workload\":\"tumor\",\"nodes\":"
         << cfg.nodes << ",\"iter_sec\":" << base.iterSec
         << ",\"records_per_sec\":" << TablePrinter::num(base.rps, 0)
         << ",\"aggregation_wait_sec\":" << base.aggSec
         << "},\"iteration_lanes\":{\"workload\":\"tumor\",\"nodes\":"
         << lane_cfg.nodes
         << ",\"sgd_shards\":" << lane_cfg.sgdShardsPerNode
         << ",\"iter_sec\":" << lanes.iterSec
         << ",\"records_per_sec\":" << TablePrinter::num(lanes.rps, 0)
         << ",\"aggregation_wait_sec\":" << lanes.aggSec << "}}";
    std::cout << json.str() << "\n";

    const jit::JitStats js = jit::KernelCache::instance().stats();
    jit_json << "],\"toolchain\":" << (have_toolchain ? "true" : "false")
             << ",\"stats\":{\"hits\":" << js.hits
             << ",\"disk_hits\":" << js.diskHits
             << ",\"misses\":" << js.misses
             << ",\"compile_ms\":" << TablePrinter::num(js.compileMs, 1)
             << ",\"fallbacks\":" << js.fallbacks << "}}";
    std::cout << jit_json.str() << "\n";
    return tape_ok && lanes_ok && jit_ok ? 0 : 1;
}
