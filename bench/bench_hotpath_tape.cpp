/**
 * @file
 * Training hot-path throughput: interpreter vs compiled tape executor.
 *
 * Measures single-thread records/sec of the per-record gradient kernel
 * for all 10 Table-1 workloads — the node-order Interpreter against the
 * Tape's flat instruction stream — and times one functional-runtime
 * iteration to show the persistent-worker system layer end to end.
 *
 * The last line of output is a machine-readable JSON summary so future
 * PRs can track the perf trajectory:
 *   {"bench":"hotpath_tape","scale":...,"results":[{"workload":...,
 *    "interp_rps":...,"tape_rps":...,"speedup":...},...],
 *    "iteration_sec":{...}}
 *
 * Target (ISSUE 1): >= 3x single-thread throughput on the linear- and
 * logistic-regression workloads (stock, texture, tumor, cancer1).
 */
#include <chrono>
#include <functional>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "dfg/interp.h"
#include "dfg/tape.h"
#include "dfg/translator.h"
#include "dsl/parser.h"
#include "ml/dataset.h"
#include "ml/workloads.h"
#include "system/cluster_runtime.h"

using namespace cosmic;

namespace {

/** Runs @p body repeatedly until ~minSeconds elapsed; returns
 *  records/sec (body processes @p records records per call). */
double
measureRps(int64_t records, const std::function<void()> &body,
           double min_seconds = 0.2)
{
    // Warm-up pass (touches every buffer, trains the branch predictor).
    body();
    int64_t reps = 0;
    auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        body();
        ++reps;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsed < min_seconds);
    return static_cast<double>(records) * reps / elapsed;
}

} // namespace

int
main()
{
    const double scale = 8.0;
    const int64_t records = 256;

    TablePrinter table("Training hot path: single-thread records/sec, "
                       "interpreter vs compiled tape (scale 1/" +
                       std::to_string(static_cast<int>(scale)) + ")");
    table.setHeader({"Benchmark", "Algorithm", "DFG ops", "Tape runs",
                     "Interp rec/s", "Tape rec/s", "Speedup"});

    std::ostringstream json;
    json << "{\"bench\":\"hotpath_tape\",\"scale\":" << scale
         << ",\"records\":" << records << ",\"results\":[";

    bool regression_ok = true;
    bool first = true;
    for (const auto &w : ml::Workload::suite()) {
        auto prog = dsl::Parser::parse(w.dslSource(scale));
        auto tr = dfg::Translator::translate(prog);

        Rng rng(99);
        auto ds = ml::DatasetGenerator::generate(w, scale, records,
                                                 rng);
        auto model =
            ml::DatasetGenerator::initialModel(w, scale, rng);

        dfg::Interpreter interp(tr);
        dfg::Tape tape(tr);
        dfg::TapeExecutor exec(tape);
        std::vector<double> grad;
        std::vector<double> grad_accum(tr.gradientWords, 0.0);

        double interp_rps = measureRps(records, [&] {
            for (int64_t r = 0; r < records; ++r)
                interp.run(ds.record(r), model, grad);
        });
        double tape_rps = measureRps(records, [&] {
            exec.runBatch(ds.data, records, model, grad_accum);
        });
        double speedup = tape_rps / interp_rps;

        bool is_regression =
            w.algorithm == ml::Algorithm::LinearRegression ||
            w.algorithm == ml::Algorithm::LogisticRegression;
        if (is_regression && speedup < 3.0)
            regression_ok = false;

        table.addRow({w.name, ml::algorithmName(w.algorithm),
                      std::to_string(tr.dfg.operationCount()),
                      std::to_string(tape.runCount()),
                      TablePrinter::num(interp_rps, 0),
                      TablePrinter::num(tape_rps, 0),
                      TablePrinter::num(speedup, 2)});

        json << (first ? "" : ",") << "{\"workload\":\"" << w.name
             << "\",\"interp_rps\":" << TablePrinter::num(interp_rps, 0)
             << ",\"tape_rps\":" << TablePrinter::num(tape_rps, 0)
             << ",\"speedup\":" << TablePrinter::num(speedup, 3)
             << "}";
        first = false;
    }
    table.print(std::cout);
    std::cout << "\nTarget: >= 3x on the linear/logistic-regression "
              << "workloads — "
              << (regression_ok ? "MET" : "NOT MET") << "\n";

    // One functional-runtime iteration: the persistent-worker system
    // layer (tape executors fed through the nodes' thread pools).
    sys::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.minibatchPerNode = 64;
    cfg.recordsPerNode = 256;
    sys::ClusterRuntime runtime(ml::Workload::byName("tumor"), scale,
                                cfg);
    auto report = runtime.train(2);
    double iter_sec = 0.0, agg_sec = 0.0, rps = 0.0;
    for (size_t i = 0; i < report.iterationSeconds.size(); ++i) {
        iter_sec += report.iterationSeconds[i];
        agg_sec += report.aggregationWaitSeconds[i];
        rps += report.recordsPerSecond[i];
    }
    size_t iters = report.iterationSeconds.size();
    iter_sec /= iters;
    agg_sec /= iters;
    rps /= iters;
    std::cout << "\nCluster iteration (tumor, 4 nodes, b=64): "
              << TablePrinter::num(iter_sec * 1e3, 3) << " ms/iter, "
              << TablePrinter::num(rps, 0) << " records/sec, "
              << TablePrinter::num(agg_sec * 1e3, 3)
              << " ms aggregation wait\n\n";

    json << "],\"iteration\":{\"workload\":\"tumor\",\"nodes\":"
         << cfg.nodes << ",\"iter_sec\":" << iter_sec
         << ",\"records_per_sec\":" << TablePrinter::num(rps, 0)
         << ",\"aggregation_wait_sec\":" << agg_sec << "}}";
    std::cout << json.str() << "\n";
    return regression_ok ? 0 : 1;
}
