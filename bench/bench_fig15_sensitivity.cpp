/**
 * @file
 * Regenerates paper Figure 15: accelerator speedup as (a) the number of
 * PEs sweeps from 192 to 6144 at fixed bandwidth, and (b) the memory
 * bandwidth sweeps at a fixed 768 PEs.
 *
 * Paper reference: the backpropagation and collaborative-filtering
 * benchmarks (compute-bound) gain from more PEs; the linear/logistic/
 * SVM benchmarks are bandwidth-bound — more PEs do nothing, more
 * bandwidth helps. No single fixed design suits every algorithm,
 * which is the case for template architectures.
 */
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/table.h"

using namespace cosmic;

namespace {

accel::PlatformSpec
withRows(int rows)
{
    auto p = accel::PlatformSpec::ultrascalePlus();
    p.maxRows = rows;
    p.name = "VU9P-PE" + std::to_string(rows * p.columns);
    // Hypothetical larger fabrics for the estimation sweep.
    p.dspSlices = static_cast<int64_t>(rows) * p.columns * 6;
    p.bramBytes = std::max<int64_t>(p.bramBytes,
                                    rows * p.columns * 4096);
    return p;
}

accel::PlatformSpec
withBandwidthWords(int words_per_cycle)
{
    // Fixed 16x48 grid; only the off-chip interface speed changes (a
    // faster interface delivers several beats per row per cycle).
    auto p = accel::PlatformSpec::ultrascalePlus();
    p.memBandwidthBytesPerSec = words_per_cycle * 4.0 * p.frequencyHz;
    p.name = "VU9P-BW" + std::to_string(words_per_cycle);
    return p;
}

} // namespace

int
main()
{
    const int64_t b = bench::kDefaultMinibatch;

    {
        TablePrinter table("Figure 15(a): speedup vs number of PEs "
                           "(baseline: 192 PEs; bandwidth fixed)");
        const std::vector<int> rows_sweep = {12, 24, 48, 96, 192, 384};
        std::vector<std::string> header = {"Benchmark"};
        for (int rows : rows_sweep)
            header.push_back(std::to_string(rows * 16) + " PEs");
        table.setHeader(header);

        for (const auto &w : ml::Workload::suite()) {
            std::vector<std::string> row = {w.name};
            double base = 0.0;
            for (int rows : rows_sweep) {
                auto s = bench::buildSummary(w, withRows(rows));
                accel::PerfEstimator perf(s.perf);
                double t = perf.batchTime(b).totalSec();
                if (base == 0.0)
                    base = t;
                row.push_back(TablePrinter::num(base / t, 2));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    {
        TablePrinter table("Figure 15(b): speedup vs memory bandwidth "
                           "(baseline: 4 words/cycle; 768 PEs fixed)");
        const std::vector<int> bw_sweep = {4, 8, 16, 32, 64, 128};
        std::vector<std::string> header = {"Benchmark"};
        for (int bw : bw_sweep)
            header.push_back(TablePrinter::num(bw * 4 * 0.15, 1) +
                             " GB/s");
        table.setHeader(header);

        for (const auto &w : ml::Workload::suite()) {
            std::vector<std::string> row = {w.name};
            double base = 0.0;
            for (int bw : bw_sweep) {
                auto s = bench::buildSummary(w, withBandwidthWords(bw));
                accel::PerfEstimator perf(s.perf);
                double t = perf.batchTime(b).totalSec();
                if (base == 0.0)
                    base = t;
                row.push_back(TablePrinter::num(base / t, 2));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper reference: mnist/acoustic/movielens/netflix "
              << "scale with PEs; stock/texture/tumor/cancer1/face/"
              << "cancer2 scale with bandwidth only.\n";
    return 0;
}
