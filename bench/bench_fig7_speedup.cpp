/**
 * @file
 * Regenerates paper Figure 7: speedup over a 4-node Spark system as the
 * cluster grows from 4 to 8 to 16 nodes, for Spark and FPGA-CoSMIC.
 *
 * Paper reference: 4/8/16-FPGA-CoSMIC average 12.6x / 23.1x / 33.8x;
 * 16-node Spark only 1.8x over 4-node Spark; movielens peaks near
 * 100x, mnist stays lowest (~7x at 16 nodes vs 16-node Spark = 18.8x
 * mean ratio).
 */
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"
#include "compiler/pipeline.h"

using namespace cosmic;

int
main()
{
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());
    const std::vector<int> node_counts = {4, 8, 16};

    TablePrinter table("Figure 7: Speedup over 4-node Spark "
                       "(baseline: 4-CPU-Spark)");
    table.setHeader({"Benchmark", "4-CPU", "8-CPU", "16-CPU", "4-FPGA",
                     "8-FPGA", "16-FPGA"});

    std::vector<std::vector<double>> spark_speedups(3), fpga_speedups(3);
    std::vector<double> ratio16;
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        double base = bench::sparkEstimate(s, 4, bench::kDefaultMinibatch,
                                           w.numVectors)
                          .epochSeconds;
        std::vector<std::string> row = {s.workload};
        for (size_t i = 0; i < node_counts.size(); ++i) {
            double t = bench::sparkEstimate(s, node_counts[i],
                                            bench::kDefaultMinibatch,
                                            w.numVectors)
                           .epochSeconds;
            spark_speedups[i].push_back(base / t);
            row.push_back(TablePrinter::num(base / t, 2));
        }
        for (size_t i = 0; i < node_counts.size(); ++i) {
            double t = bench::cosmicEstimate(s, node_counts[i],
                                             bench::kDefaultMinibatch,
                                             w.numVectors)
                           .epochSeconds;
            fpga_speedups[i].push_back(base / t);
            row.push_back(TablePrinter::num(base / t, 2));
        }
        ratio16.push_back(fpga_speedups[2].back() /
                          spark_speedups[2].back());
        table.addRow(std::move(row));
    }

    std::vector<std::string> gmean_row = {"geomean"};
    for (auto *group : {&spark_speedups, &fpga_speedups})
        for (const auto &col : *group)
            gmean_row.push_back(TablePrinter::num(geomean(col), 2));
    table.addRow(std::move(gmean_row));
    table.print(std::cout);

    std::cout << "\n16-FPGA-CoSMIC over 16-CPU-Spark: geomean "
              << TablePrinter::num(geomean(ratio16), 1) << "x, mean "
              << TablePrinter::num(mean(ratio16), 1)
              << "x  (paper: 18.8x mean)\n";
    std::cout << "Paper reference means: 4/8/16-FPGA = 12.6x / 23.1x / "
              << "33.8x; 16-CPU Spark = 1.8x.\n";

    // Build-cache effect: one cold in-memory build against repeated
    // warm hits of the same source + platform + options. The last line
    // is a machine-readable JSON summary for the perf trajectory.
    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    auto platform = accel::PlatformSpec::ultrascalePlus();
    std::string src = ml::Workload::byName("face").dslSource(16.0);

    compile::BuildCache::instance().clear();
    auto t0 = clock::now();
    compile::buildCached(src, platform);
    auto t1 = clock::now();
    double cold_sec = seconds(t0, t1);

    const int warm_reps = 64;
    auto t2 = clock::now();
    for (int i = 0; i < warm_reps; ++i)
        compile::buildCached(src, platform);
    auto t3 = clock::now();
    double warm_sec = seconds(t2, t3) / warm_reps;

    auto stats = compile::BuildCache::instance().stats();
    std::cout << "\nBuild cache (face, scale 1/16): cold "
              << TablePrinter::num(cold_sec * 1e3, 3) << " ms, warm hit "
              << TablePrinter::num(warm_sec * 1e6, 3) << " us ("
              << TablePrinter::num(cold_sec / warm_sec, 0) << "x)\n";
    std::cout << "{\"bench\":\"fig7_speedup\",\"build_cache\":{"
              << "\"cold_sec\":" << cold_sec
              << ",\"warm_sec\":" << warm_sec
              << ",\"speedup\":" << cold_sec / warm_sec
              << ",\"hits\":" << stats.hits
              << ",\"misses\":" << stats.misses
              << ",\"entries\":" << stats.entries << "}}\n";
    return 0;
}
