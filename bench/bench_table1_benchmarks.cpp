/**
 * @file
 * Regenerates paper Table 1 (the benchmark suite and its datasets) and
 * Table 2 (the evaluated platforms), augmented with the translated
 * DFG's size and critical path for each benchmark.
 */
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "compiler/pipeline.h"
#include "dfg/analysis.h"
#include "ml/workloads.h"
#include "accel/platform.h"

using namespace cosmic;

namespace {

std::string
thousands(int64_t v)
{
    std::string s = std::to_string(v);
    for (int pos = static_cast<int>(s.size()) - 3; pos > 0; pos -= 3)
        s.insert(pos, ",");
    return s;
}

} // namespace

int
main()
{
    TablePrinter table(
        "Table 1: Benchmarks, algorithms, application domains, datasets");
    table.setHeader({"Name", "Algorithm", "Domain", "# Features",
                     "Model Topology", "Model (KB)", "LoC",
                     "# Input Vectors", "Data (GB)", "DFG ops",
                     "Critical Path", "DSL LoC (ours)"});

    for (const auto &w : ml::Workload::suite()) {
        std::string dsl = w.dslSource();
        auto tr = compile::translateSource(dsl);
        int dsl_lines = static_cast<int>(
            std::count(dsl.begin(), dsl.end(), '\n'));
        table.addRow({w.name, ml::algorithmName(w.algorithm), w.domain,
                      thousands(w.d1), w.topology,
                      thousands(w.modelKB),
                      std::to_string(w.linesOfCode),
                      thousands(w.numVectors),
                      TablePrinter::num(w.dataGB, 1),
                      thousands(tr.dfg.operationCount()),
                      thousands(dfg::criticalPathLength(tr.dfg)),
                      std::to_string(dsl_lines)});
    }
    table.print(std::cout);

    TablePrinter platforms("Table 2: CPU, GPU, FPGA, and P-ASICs");
    platforms.setHeader({"Platform", "Compute", "Frequency",
                         "Memory BW (GB/s)", "On-chip (KB)", "TDP (W)"});
    accel::HostSpec host;
    platforms.addRow({"Xeon E3-1275 v5", "4 cores", "3.6 GHz",
                      TablePrinter::num(
                          host.cpuMemBandwidthBytesPerSec / 1e9, 1),
                      "-", TablePrinter::num(host.cpuTdpWatts, 0)});
    platforms.addRow({"Tesla K40c", "2880 cores", "875 MHz",
                      TablePrinter::num(
                          host.gpuMemBandwidthBytesPerSec / 1e9, 0),
                      "-", TablePrinter::num(host.gpuTdpWatts, 0)});
    for (const auto &p : {accel::PlatformSpec::ultrascalePlus(),
                          accel::PlatformSpec::pasicF(),
                          accel::PlatformSpec::pasicG()}) {
        platforms.addRow(
            {p.name, thousands(p.maxPes()) + " PEs",
             TablePrinter::num(p.frequencyHz / 1e6, 0) + " MHz",
             TablePrinter::num(p.memBandwidthBytesPerSec / 1e9, 1),
             thousands(p.bramBytes / 1024),
             TablePrinter::num(p.tdpWatts, 0)});
    }
    platforms.print(std::cout);
    return 0;
}
