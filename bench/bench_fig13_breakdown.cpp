/**
 * @file
 * Regenerates paper Figure 13: fraction of 3-FPGA-CoSMIC runtime spent
 * computing (vs communicating/aggregating) as the mini-batch size
 * grows from 500 to 100,000.
 *
 * Paper reference: computation is 12% of the runtime at b=500 and 95%
 * at b=100,000 on average.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"
#include "system/cluster_runtime.h"

using namespace cosmic;

namespace {

/**
 * The same breakdown, measured instead of modeled: the functional
 * runtime's per-iteration perf counters (TrainingReport) on scaled-down
 * workloads. The absolute times are host-CPU artifacts, but the trend —
 * compute fraction grows with the mini-batch — must match Fig. 13.
 */
void
measuredBreakdown()
{
    const std::vector<int64_t> batches = {16, 64, 256};
    TablePrinter table("Measured (functional runtime, scale 1/64, "
                       "3 nodes): compute fraction of iteration (%)");
    std::vector<std::string> header = {"Benchmark"};
    for (int64_t b : batches)
        header.push_back("b=" + std::to_string(b));
    header.push_back("rec/s (b=256)");
    table.setHeader(header);

    for (const auto &w : ml::Workload::suite()) {
        std::vector<std::string> row = {w.name};
        double rps = 0.0;
        for (int64_t b : batches) {
            auto report = bench::trainMeasured(
                w.name, 64.0, bench::smallCluster(3, b, 256, 1), 1);
            double compute = mean(report.maxNodeComputeSeconds);
            double iter = mean(report.iterationSeconds);
            row.push_back(
                TablePrinter::num(100.0 * compute / iter, 1));
            rps = mean(report.recordsPerSecond);
        }
        row.push_back(TablePrinter::num(rps, 0));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

/**
 * Per-iteration compute vs aggregation-wait breakdown from the
 * TrainingReport perf counters — the measured analogue of Fig. 13's
 * split, now resolved per iteration instead of per run. Shown for the
 * barrier protocol and the pipelined (overlapIterations) loop side by
 * side: overlap should shrink the visible aggregation share because
 * nodes compute iteration k+1 while round k reduces.
 */
void
perIterationBreakdown()
{
    for (bool overlap : {false, true}) {
        sys::ClusterConfig cfg = bench::smallCluster(4, 64, 256, 1);
        cfg.overlapIterations = overlap;
        auto report = bench::trainMeasured("stock", 64.0, cfg, 2);

        TablePrinter table(
            std::string("Per-iteration breakdown (stock, 4 nodes, ") +
            (overlap ? "pipelined" : "barrier") +
            "): compute vs aggregation wait");
        table.setHeader({"Iter", "compute (ms)", "agg wait (ms)",
                         "agg share (%)"});
        for (size_t i = 0; i < report.computeSecondsTotal.size();
             ++i) {
            const double c = report.computeSecondsTotal[i];
            const double a = report.aggregationSecondsTotal[i];
            const double total = c + a;
            table.addRow({std::to_string(i),
                          TablePrinter::num(c * 1e3, 3),
                          TablePrinter::num(a * 1e3, 3),
                          TablePrinter::num(
                              total > 0.0 ? 100.0 * a / total : 0.0,
                              1)});
        }
        table.print(std::cout);
    }
}

} // namespace

int
main()
{
    const int nodes = 3;
    const std::vector<int64_t> batches = {500, 2000, 10000, 40000,
                                          100000};
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    TablePrinter table("Figure 13: computation fraction of "
                       "3-FPGA-CoSMIC runtime vs mini-batch size (%)");
    std::vector<std::string> header = {"Benchmark"};
    for (int64_t b : batches)
        header.push_back("b=" + std::to_string(b));
    table.setHeader(header);

    std::vector<std::vector<double>> cols(batches.size());
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        std::vector<std::string> row = {s.workload};
        for (size_t i = 0; i < batches.size(); ++i) {
            auto it = bench::cosmicEstimate(s, nodes, batches[i],
                                            w.numVectors)
                          .iteration;
            double fraction = it.computeSec / it.totalSec();
            cols[i].push_back(fraction);
            row.push_back(TablePrinter::num(100.0 * fraction, 1));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg = {"average"};
    for (const auto &col : cols)
        avg.push_back(TablePrinter::num(100.0 * mean(col), 1));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::cout << "\nPaper reference: 12% at b=500, 95% at b=100,000.\n\n";

    measuredBreakdown();
    std::cout << "\n";
    perIterationBreakdown();
    return 0;
}
