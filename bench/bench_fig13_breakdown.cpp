/**
 * @file
 * Regenerates paper Figure 13: fraction of 3-FPGA-CoSMIC runtime spent
 * computing (vs communicating/aggregating) as the mini-batch size
 * grows from 500 to 100,000.
 *
 * Paper reference: computation is 12% of the runtime at b=500 and 95%
 * at b=100,000 on average.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    const int nodes = 3;
    const std::vector<int64_t> batches = {500, 2000, 10000, 40000,
                                          100000};
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    TablePrinter table("Figure 13: computation fraction of "
                       "3-FPGA-CoSMIC runtime vs mini-batch size (%)");
    std::vector<std::string> header = {"Benchmark"};
    for (int64_t b : batches)
        header.push_back("b=" + std::to_string(b));
    table.setHeader(header);

    std::vector<std::vector<double>> cols(batches.size());
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        std::vector<std::string> row = {s.workload};
        for (size_t i = 0; i < batches.size(); ++i) {
            auto it = bench::cosmicEstimate(s, nodes, batches[i],
                                            w.numVectors)
                          .iteration;
            double fraction = it.computeSec / it.totalSec();
            cols[i].push_back(fraction);
            row.push_back(TablePrinter::num(100.0 * fraction, 1));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> avg = {"average"};
    for (const auto &col : cols)
        avg.push_back(TablePrinter::num(100.0 * mean(col), 1));
    table.addRow(std::move(avg));
    table.print(std::cout);

    std::cout << "\nPaper reference: 12% at b=500, 95% at b=100,000.\n";
    return 0;
}
