/**
 * @file
 * Regenerates paper Table 3: the Planner's chosen threads-per-FPGA and
 * the resource utilization of the generated UltraScale+ accelerators.
 */
#include <iostream>

#include "bench_support.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    auto platform = accel::PlatformSpec::ultrascalePlus();
    auto suite = bench::buildSuite(platform);

    TablePrinter table(
        "Table 3: Number of threads and FPGA resource utilization "
        "(UltraScale+ VU9P)");
    table.setHeader({"Name", "Threads/FPGA", "Rows/Thread", "LUTs",
                     "LUT %", "Flip Flops", "FF %", "BRAM (KB)",
                     "BRAM %", "DSP Slices", "DSP %"});
    for (const auto &s : suite) {
        table.addRow({s.workload, std::to_string(s.threads),
                      std::to_string(s.rowsPerThread),
                      std::to_string(s.usage.luts),
                      TablePrinter::num(100.0 * s.usage.lutUtil, 1),
                      std::to_string(s.usage.flipFlops),
                      TablePrinter::num(100.0 * s.usage.ffUtil, 1),
                      std::to_string(s.usage.bramBytes / 1024),
                      TablePrinter::num(100.0 * s.usage.bramUtil, 1),
                      std::to_string(s.usage.dspSlices),
                      TablePrinter::num(100.0 * s.usage.dspUtil, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: threads/FPGA of 2/2/8/1/4/2/2/1/4/2"
              << " with ~84-89% BRAM utilization and 19-60% DSP "
              << "utilization.\n";
    return 0;
}
