/**
 * @file
 * Regenerates paper Table 3: the Planner's chosen threads-per-FPGA and
 * the resource utilization of the generated UltraScale+ accelerators —
 * and adds a measured static-vs-elastic PE-utilization comparison: for
 * every Table 1 benchmark, one worker thread's PE array is simulated
 * cycle-accurately under the static schedule (CycleSimulator) and under
 * elastic dataflow firing with optimized FIFOs (ElasticSimulator +
 * BufferOptimizer), and the two occupancies are compared.
 *
 * The comparison runs at a reduced model scale (default 1/64, see
 * --scale) on a fixed T2xR8 design point so all ten benchmarks simulate
 * in seconds; the utilization *ratio* is what the paper's elastic
 * argument is about, not the absolute scale.
 *
 * Exit status is the gate: elastic PE utilization must be >= static on
 * every benchmark, strictly higher on at least one, and every fitted
 * placement must sit within the platform's leftover BRAM budget.
 *
 * The last stdout line is machine-readable:
 *   {"bench":"util", ...}   (CI greps it into BENCH_util.json)
 */
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/buffer_opt.h"
#include "accel/elastic.h"
#include "bench_support.h"
#include "common/table.h"
#include "compiler/pipeline.h"
#include "planner/planner.h"

using namespace cosmic;

int
main(int argc, char **argv)
{
    double scale = 64.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc)
            scale = std::stod(argv[++i]);
        else if (arg == "--quick")
            scale = 128.0;
    }

    auto platform = accel::PlatformSpec::ultrascalePlus();
    auto suite = bench::buildSuite(platform);

    TablePrinter table(
        "Table 3: Number of threads and FPGA resource utilization "
        "(UltraScale+ VU9P)");
    table.setHeader({"Name", "Threads/FPGA", "Rows/Thread", "LUTs",
                     "LUT %", "Flip Flops", "FF %", "BRAM (KB)",
                     "BRAM %", "DSP Slices", "DSP %"});
    for (const auto &s : suite) {
        table.addRow({s.workload, std::to_string(s.threads),
                      std::to_string(s.rowsPerThread),
                      std::to_string(s.usage.luts),
                      TablePrinter::num(100.0 * s.usage.lutUtil, 1),
                      std::to_string(s.usage.flipFlops),
                      TablePrinter::num(100.0 * s.usage.ffUtil, 1),
                      std::to_string(s.usage.bramBytes / 1024),
                      TablePrinter::num(100.0 * s.usage.bramUtil, 1),
                      std::to_string(s.usage.dspSlices),
                      TablePrinter::num(100.0 * s.usage.dspUtil, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: threads/FPGA of 2/2/8/1/4/2/2/1/4/2"
              << " with ~84-89% BRAM utilization and 19-60% DSP "
              << "utilization.\n\n";

    // --- Static vs elastic PE utilization (measured) ---
    const int kThreads = 2, kRows = 8;
    const int kRecords = 6;
    TablePrinter util("Static vs elastic PE utilization (T" +
                      std::to_string(kThreads) + "xR" +
                      std::to_string(kRows) + ", 1/" +
                      TablePrinter::num(scale, 0) + " scale, " +
                      std::to_string(kRecords) + "-record stream)");
    util.setHeader({"Name", "Static %", "Elastic %", "Gain",
                    "FIFO Bytes", "Budget"});

    bool all_ok = true;
    bool any_strict = false;
    std::ostringstream json;
    json << "{\"bench\":\"util\",\"scale\":" << scale
         << ",\"threads\":" << kThreads << ",\"rows\":" << kRows
         << ",\"workloads\":[";
    bool first = true;

    for (const auto &w : ml::Workload::suite()) {
        auto tr = compile::translateSource(w.dslSource(scale));
        auto plan = planner::Planner::makePlan(tr, platform, kThreads,
                                               kRows);
        auto kernel = compiler::KernelCompiler::compile(tr, plan);

        const double static_util =
            static_cast<double>(kernel.opCount) /
            (static_cast<double>(plan.pesPerThread()) *
             kernel.computeCyclesPerRecord);

        auto placement = accel::BufferOptimizer::optimize(
            tr, kernel, plan, kRecords);
        const double elastic_util = placement.utilization;

        const bool ge = elastic_util >= static_util;
        const bool within = placement.withinBudget;
        any_strict |= elastic_util > static_util;
        all_ok &= ge && within;

        util.addRow({w.name, TablePrinter::num(100.0 * static_util, 1),
                     TablePrinter::num(100.0 * elastic_util, 1),
                     TablePrinter::num(elastic_util / static_util, 2) +
                         (ge ? "" : "  << REGRESSION"),
                     std::to_string(placement.bufferBytesPerThread),
                     within ? "fits" : "OVER"});

        if (!first)
            json << ",";
        first = false;
        json << "{\"name\":\"" << w.name
             << "\",\"static_util\":" << static_util
             << ",\"elastic_util\":" << elastic_util
             << ",\"buffer_bytes\":" << placement.bufferBytesPerThread
             << ",\"budget_bytes\":" << placement.budgetBytesPerThread
             << ",\"within_budget\":" << (within ? "true" : "false")
             << "}";
    }
    util.print(std::cout);

    const bool pass = all_ok && any_strict;
    std::cout << "\nGate: elastic >= static on every benchmark, "
              << "strictly higher on at least one, buffers within "
              << "budget: " << (pass ? "PASS" : "FAIL") << "\n";
    json << "],\"ok\":" << (pass ? "true" : "false") << "}";
    std::cout << json.str() << "\n";
    return pass ? 0 : 1;
}
