/**
 * @file
 * Service-layer load benchmark: the multi-tenant scheduler under a
 * burst of concurrent jobs.
 *
 * A fleet of tenants submits the Table 1 workloads (both wire
 * encodings, several tenants per program) to one JobScheduler sized
 * to train 8 jobs at once. The bench measures what the service layer
 * promises:
 *
 *  - **Throughput**: jobs/sec over the whole burst, and the peak
 *    number of jobs observed training simultaneously (target >= 8).
 *  - **Queue waits**: p50/p95 submission-to-admission latency.
 *  - **Compile dedup**: duplicate programs across tenants must hit
 *    the shared BuildCache (cross-tenant hit rate > 0).
 *  - **Isolation**: every job's final model must bit-match a solo
 *    single-tenant run of the identical spec — zero cross-job state
 *    leakage, whatever interleaving the scheduler picked.
 *
 * The last line of output is a machine-readable JSON summary:
 *   {"bench":"service","jobs":...,"peak_concurrent":...,
 *    "jobs_per_sec":...,"p50_queue_wait_sec":...,
 *    "p95_queue_wait_sec":...,"cache_hits":...,"cache_misses":...,
 *    "cross_tenant_hit_rate":...,"trajectory_matches":...,
 *    "gates":{"concurrency":...,"isolation":...,"dedup":...}}
 * The binary exits nonzero when a gate fails.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "common/table.h"
#include "compiler/pipeline.h"
#include "system/scheduler.h"

using namespace cosmic;

namespace {

/** The tenant mix: distinct programs x encodings, several tenants
 *  re-submitting each so the BuildCache can prove cross-tenant
 *  dedup. */
std::vector<sys::JobSpec>
tenantMix(int tenants_per_spec)
{
    const std::vector<std::string> workloads = {"stock", "tumor",
                                                "texture", "cancer1"};
    std::vector<sys::JobSpec> specs;
    for (int tenant = 0; tenant < tenants_per_spec; ++tenant) {
        for (const auto &w : workloads) {
            for (auto payload :
                 {net::PayloadKind::F64, net::PayloadKind::Q16}) {
                sys::JobSpec spec;
                spec.name = w + (payload == net::PayloadKind::Q16
                                     ? "/q16/t"
                                     : "/f64/t") +
                            std::to_string(tenant);
                spec.workload = w;
                spec.scale = 64.0;
                spec.epochs = 2;
                spec.cluster.nodes = 2;
                spec.cluster.minibatchPerNode = 32;
                spec.cluster.recordsPerNode = 128;
                // Pin the shard count explicitly so the spec is
                // already in the scheduler's canonical form and the
                // solo baseline is trivially the same spec.
                spec.cluster.sgdShardsPerNode =
                    spec.cluster.acceleratorThreadsPerNode;
                spec.cluster.transport.payload = payload;
                spec.cluster.aggregation.deterministic = true;
                specs.push_back(std::move(spec));
            }
        }
    }
    return specs;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

int
main()
{
    constexpr int kConcurrencyTarget = 8;
    const std::vector<sys::JobSpec> specs = tenantMix(3);

    // Solo baselines: each distinct spec trained single-tenant. The
    // session layer adds observation only, so this is the ground
    // truth any scheduled run must bit-match.
    std::map<std::string, std::vector<double>> solo;
    for (const auto &spec : specs) {
        if (solo.count(spec.name))
            continue;
        sys::Session session(spec);
        solo[spec.name] = session.run().finalModel;
    }

    const compile::BuildCacheStats before =
        compile::BuildCache::instance().stats();

    sys::SchedulerConfig cfg;
    cfg.totalNodes = 2 * kConcurrencyTarget;
    cfg.maxConcurrent = kConcurrencyTarget;
    cfg.maxQueued = static_cast<int>(specs.size());

    std::atomic<bool> done{false};
    int peak_concurrent = 0;
    std::vector<uint64_t> ids;
    double burst_sec = 0.0;

    sys::JobScheduler scheduler(cfg);
    {
        // Sample the running gauge while the burst drains; the
        // scheduler's own stats are the source of truth.
        std::thread sampler([&] {
            while (!done.load()) {
                peak_concurrent =
                    std::max(peak_concurrent,
                             scheduler.stats().runningNow);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });

        const auto start = std::chrono::steady_clock::now();
        for (const auto &spec : specs)
            ids.push_back(scheduler.submit(spec));
        scheduler.drain();
        burst_sec = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        done.store(true);
        sampler.join();
    }

    const compile::BuildCacheStats after =
        compile::BuildCache::instance().stats();
    const uint64_t hits = after.hits - before.hits;
    const uint64_t misses = after.misses - before.misses;
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) /
                  static_cast<double>(hits + misses)
            : 0.0;

    // Isolation: every scheduled job's model vs its solo baseline.
    int matches = 0;
    std::vector<double> waits;
    for (size_t i = 0; i < ids.size(); ++i) {
        const auto session = scheduler.session(ids[i]);
        const sys::JobProgress p = session->progress();
        waits.push_back(p.queueWaitSec);
        const std::vector<double> &got =
            session->report().finalModel;
        const std::vector<double> &want = solo[specs[i].name];
        const bool match =
            p.state == sys::JobState::Done &&
            got.size() == want.size() &&
            std::memcmp(got.data(), want.data(),
                        want.size() * sizeof(double)) == 0;
        if (match)
            ++matches;
        else
            std::cout << "ISOLATION FAILURE: job " << specs[i].name
                      << " (" << sys::jobStateName(p.state)
                      << ") diverged from its solo run\n";
    }
    std::sort(waits.begin(), waits.end());
    const double p50 = percentile(waits, 0.50);
    const double p95 = percentile(waits, 0.95);
    const double jobs_per_sec =
        burst_sec > 0.0
            ? static_cast<double>(ids.size()) / burst_sec
            : 0.0;

    const sys::SchedulerStats stats = scheduler.stats();
    TablePrinter table("Service load: " +
                       std::to_string(ids.size()) +
                       " jobs over " +
                       std::to_string(kConcurrencyTarget) +
                       "-concurrent scheduler");
    table.setHeader({"Metric", "Value"});
    table.addRow({"jobs completed", std::to_string(stats.completed)});
    table.addRow({"burst seconds", TablePrinter::num(burst_sec, 2)});
    table.addRow({"jobs/sec", TablePrinter::num(jobs_per_sec, 2)});
    table.addRow({"peak concurrent", std::to_string(peak_concurrent)});
    table.addRow({"p50 queue wait (ms)",
                  TablePrinter::num(p50 * 1e3, 1)});
    table.addRow({"p95 queue wait (ms)",
                  TablePrinter::num(p95 * 1e3, 1)});
    table.addRow({"peak queue depth",
                  std::to_string(stats.peakQueueDepth)});
    table.addRow({"cache hits (burst)", std::to_string(hits)});
    table.addRow({"cache misses (burst)", std::to_string(misses)});
    table.addRow({"cross-tenant hit rate",
                  TablePrinter::num(100.0 * hit_rate, 1) + "%"});
    table.addRow({"trajectory matches",
                  std::to_string(matches) + "/" +
                      std::to_string(ids.size())});
    table.print(std::cout);

    const bool cache_enabled = compile::BuildCache::enabled();
    const bool gate_concurrency =
        peak_concurrent >= kConcurrencyTarget;
    const bool gate_isolation =
        matches == static_cast<int>(ids.size());
    // With the cache disabled by env there is nothing to dedup.
    const bool gate_dedup = !cache_enabled || hits > 0;

    std::cout << "\nGates: concurrency >= " << kConcurrencyTarget
              << " — " << (gate_concurrency ? "MET" : "NOT MET")
              << "; isolation (bit-exact vs solo) — "
              << (gate_isolation ? "MET" : "NOT MET")
              << "; cross-tenant dedup — "
              << (gate_dedup ? "MET"
                             : "NOT MET")
              << "\n\n";

    std::cout << "{\"bench\":\"service\",\"jobs\":" << ids.size()
              << ",\"concurrent_target\":" << kConcurrencyTarget
              << ",\"peak_concurrent\":" << peak_concurrent
              << ",\"jobs_per_sec\":" << jobs_per_sec
              << ",\"p50_queue_wait_sec\":" << p50
              << ",\"p95_queue_wait_sec\":" << p95
              << ",\"cache_hits\":" << hits << ",\"cache_misses\":"
              << misses << ",\"cross_tenant_hit_rate\":" << hit_rate
              << ",\"trajectory_matches\":" << matches
              << ",\"gates\":{\"concurrency\":" << gate_concurrency
              << ",\"isolation\":" << gate_isolation
              << ",\"dedup\":" << gate_dedup << "}}\n";

    return gate_concurrency && gate_isolation && gate_dedup ? 0 : 1;
}
