/**
 * @file
 * Regenerates paper Figure 9: system-wide speedup of the three-node
 * P-ASIC-F, P-ASIC-G, and GPU CoSMIC systems over 3-FPGA-CoSMIC.
 *
 * Paper reference: P-ASIC-F 1.2x, P-ASIC-G 2.3x, GPU 1.5x on average —
 * computation speedups (Fig. 10) do not translate to proportional
 * system-wide gains, which is the paper's argument for the full-stack
 * approach.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    const int nodes = 3;
    auto fpga = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());
    auto pasic_f = bench::buildSuite(accel::PlatformSpec::pasicF());
    auto pasic_g = bench::buildSuite(accel::PlatformSpec::pasicG());

    TablePrinter table("Figure 9: System-wide speedup over "
                       "3-FPGA-CoSMIC");
    table.setHeader({"Benchmark", "3-P-ASIC-F", "3-P-ASIC-G", "3-GPU"});

    std::vector<double> f_sp, g_sp, gpu_sp;
    for (size_t i = 0; i < fpga.size(); ++i) {
        const auto &w = ml::Workload::byName(fpga[i].workload);
        double base = bench::cosmicEstimate(fpga[i], nodes,
                                            bench::kDefaultMinibatch,
                                            w.numVectors)
                          .iteration.totalSec();
        double tf = bench::cosmicEstimate(pasic_f[i], nodes,
                                          bench::kDefaultMinibatch,
                                          w.numVectors)
                        .iteration.totalSec();
        double tg = bench::cosmicEstimate(pasic_g[i], nodes,
                                          bench::kDefaultMinibatch,
                                          w.numVectors)
                        .iteration.totalSec();
        double tgpu = bench::gpuEstimate(fpga[i], w, nodes,
                                         bench::kDefaultMinibatch,
                                         w.numVectors)
                          .iteration.totalSec();
        f_sp.push_back(base / tf);
        g_sp.push_back(base / tg);
        gpu_sp.push_back(base / tgpu);
        table.addRow({fpga[i].workload,
                      TablePrinter::num(base / tf, 2),
                      TablePrinter::num(base / tg, 2),
                      TablePrinter::num(base / tgpu, 2)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(f_sp), 2),
                  TablePrinter::num(geomean(g_sp), 2),
                  TablePrinter::num(geomean(gpu_sp), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference averages: P-ASIC-F 1.2x, P-ASIC-G "
              << "2.3x, GPU 1.5x.\n";
    return 0;
}
