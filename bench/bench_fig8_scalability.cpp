/**
 * @file
 * Regenerates paper Figure 8: scalability of CoSMIC and Spark, each
 * normalized to its own 4-node configuration.
 *
 * Paper reference: CoSMIC 1.8x / 2.7x at 8 / 16 nodes; Spark 1.3x /
 * 1.8x. The improvement gap is largest for the benchmarks with a high
 * communication-to-computation ratio (stock, texture, tumor, cancer1,
 * face, cancer2).
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    TablePrinter table("Figure 8: Scalability (normalized to each "
                       "system's own 4-node configuration)");
    table.setHeader({"Benchmark", "CoSMIC 8-node", "CoSMIC 16-node",
                     "Spark 8-node", "Spark 16-node"});

    std::vector<double> c8s, c16s, s8s, s16s;
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        auto cosmic_epoch = [&](int nodes) {
            return bench::cosmicEstimate(s, nodes,
                                         bench::kDefaultMinibatch,
                                         w.numVectors)
                .epochSeconds;
        };
        auto spark_epoch = [&](int nodes) {
            return bench::sparkEstimate(s, nodes,
                                        bench::kDefaultMinibatch,
                                        w.numVectors)
                .epochSeconds;
        };
        double c4 = cosmic_epoch(4);
        double s4 = spark_epoch(4);
        double c8 = c4 / cosmic_epoch(8);
        double c16 = c4 / cosmic_epoch(16);
        double s8 = s4 / spark_epoch(8);
        double s16 = s4 / spark_epoch(16);
        c8s.push_back(c8);
        c16s.push_back(c16);
        s8s.push_back(s8);
        s16s.push_back(s16);
        table.addRow({s.workload, TablePrinter::num(c8, 2),
                      TablePrinter::num(c16, 2),
                      TablePrinter::num(s8, 2),
                      TablePrinter::num(s16, 2)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(c8s), 2),
                  TablePrinter::num(geomean(c16s), 2),
                  TablePrinter::num(geomean(s8s), 2),
                  TablePrinter::num(geomean(s16s), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference: CoSMIC 1.8x / 2.7x; Spark 1.3x / "
              << "1.8x at 8 / 16 nodes.\n";
    return 0;
}
