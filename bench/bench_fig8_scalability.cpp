/**
 * @file
 * Regenerates paper Figure 8: scalability of CoSMIC and Spark, each
 * normalized to its own 4-node configuration.
 *
 * Paper reference: CoSMIC 1.8x / 2.7x at 8 / 16 nodes; Spark 1.3x /
 * 1.8x. The improvement gap is largest for the benchmarks with a high
 * communication-to-computation ratio (stock, texture, tumor, cancer1,
 * face, cancer2).
 */
#include <iostream>
#include <numeric>
#include <sstream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"
#include "system/cluster_runtime.h"

using namespace cosmic;

namespace {

/** One measured scale-out run (real ClusterRuntime, not the
 *  analytical estimator) on the selected fabric. */
struct NetSeriesPoint
{
    int nodes;
    const char *backend;
    double iterSec;
    double bytesPerIter;
    double serializeSec;
    double deserializeSec;
    uint64_t wakeups;
};

NetSeriesPoint
measureBackend(int nodes, net::TransportKind kind)
{
    sys::ClusterConfig cfg = bench::smallCluster(nodes, 32, 64);
    cfg.transport.kind = kind;
    auto report = bench::trainMeasured("stock", 64.0, cfg, 1);
    NetSeriesPoint p;
    p.nodes = nodes;
    p.backend =
        kind == net::TransportKind::Tcp ? "tcp-loopback" : "inprocess";
    const double iters =
        std::max<size_t>(1, report.iterationSeconds.size());
    p.iterSec = std::accumulate(report.iterationSeconds.begin(),
                                report.iterationSeconds.end(), 0.0) /
                iters;
    p.bytesPerIter = double(report.net.bytesSent) / iters;
    p.serializeSec = report.net.serializeSec;
    p.deserializeSec = report.net.deserializeSec;
    p.wakeups = report.net.wakeups;
    return p;
}

/** One measured pipelining run: barrier vs overlap, sync vs async. */
struct OverlapSeriesPoint
{
    int nodes;
    const char *backend;
    const char *mode; // "barrier" | "overlap-sync" | "overlap-async"
    double itersPerSec;
    double speedupVsBarrier; // filled once the barrier point is known
};

OverlapSeriesPoint
measureOverlap(int nodes, net::TransportKind kind, bool overlap,
               int max_staleness)
{
    sys::ClusterConfig cfg = bench::smallCluster(
        nodes, 32, 64, nodes >= 8 ? nodes / 4 : 0);
    cfg.transport.kind = kind;
    cfg.overlapIterations = overlap;
    cfg.maxStaleness = max_staleness;
    if (max_staleness > 0)
        cfg.aggregation.deterministic = false;
    auto report = bench::trainMeasured("stock", 64.0, cfg, 4);
    OverlapSeriesPoint p;
    p.nodes = nodes;
    p.backend =
        kind == net::TransportKind::Tcp ? "tcp-loopback" : "inprocess";
    p.mode = !overlap && max_staleness == 0 ? "barrier"
             : max_staleness == 0          ? "overlap-sync"
                                           : "overlap-async";
    const double total =
        std::accumulate(report.iterationSeconds.begin(),
                        report.iterationSeconds.end(), 0.0);
    p.itersPerSec =
        total > 0.0 ? double(report.iterations) / total : 0.0;
    p.speedupVsBarrier = 1.0;
    return p;
}

} // namespace

int
main()
{
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    TablePrinter table("Figure 8: Scalability (normalized to each "
                       "system's own 4-node configuration)");
    table.setHeader({"Benchmark", "CoSMIC 8-node", "CoSMIC 16-node",
                     "Spark 8-node", "Spark 16-node"});

    std::vector<double> c8s, c16s, s8s, s16s;
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        auto cosmic_epoch = [&](int nodes) {
            return bench::cosmicEstimate(s, nodes,
                                         bench::kDefaultMinibatch,
                                         w.numVectors)
                .epochSeconds;
        };
        auto spark_epoch = [&](int nodes) {
            return bench::sparkEstimate(s, nodes,
                                        bench::kDefaultMinibatch,
                                        w.numVectors)
                .epochSeconds;
        };
        double c4 = cosmic_epoch(4);
        double s4 = spark_epoch(4);
        double c8 = c4 / cosmic_epoch(8);
        double c16 = c4 / cosmic_epoch(16);
        double s8 = s4 / spark_epoch(8);
        double s16 = s4 / spark_epoch(16);
        c8s.push_back(c8);
        c16s.push_back(c16);
        s8s.push_back(s8);
        s16s.push_back(s16);
        table.addRow({s.workload, TablePrinter::num(c8, 2),
                      TablePrinter::num(c16, 2),
                      TablePrinter::num(s8, 2),
                      TablePrinter::num(s16, 2)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(c8s), 2),
                  TablePrinter::num(geomean(c16s), 2),
                  TablePrinter::num(geomean(s8s), 2),
                  TablePrinter::num(geomean(s16s), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference: CoSMIC 1.8x / 2.7x; Spark 1.3x / "
              << "1.8x at 8 / 16 nodes.\n";

    // Measured series: the real runtime over the in-process fabric vs
    // TCP loopback (every message crosses the wire protocol and the
    // epoll loop). The last line is the machine-readable BENCH_net
    // summary CI keeps as an artifact.
    TablePrinter net_table(
        "TCP-loopback series (measured, stock @ scale 64)");
    net_table.setHeader({"Nodes", "Backend", "iter (ms)", "wire B/iter",
                         "serialize (ms)", "epoll wakeups"});
    std::vector<NetSeriesPoint> series;
    for (int nodes : {4, 8}) {
        series.push_back(
            measureBackend(nodes, net::TransportKind::InProcess));
        series.push_back(
            measureBackend(nodes, net::TransportKind::Tcp));
    }
    for (const auto &p : series)
        net_table.addRow({std::to_string(p.nodes), p.backend,
                          TablePrinter::num(p.iterSec * 1e3, 3),
                          TablePrinter::num(p.bytesPerIter, 0),
                          TablePrinter::num(p.serializeSec * 1e3, 3),
                          std::to_string(p.wakeups)});
    net_table.print(std::cout);

    std::ostringstream json;
    json << "{\"bench\":\"net\",\"workload\":\"stock\",\"series\":[";
    bool first = true;
    for (const auto &p : series) {
        json << (first ? "" : ",") << "{\"nodes\":" << p.nodes
             << ",\"backend\":\"" << p.backend
             << "\",\"iter_sec\":" << p.iterSec
             << ",\"bytes_per_iter\":" << p.bytesPerIter
             << ",\"serialize_sec\":" << p.serializeSec
             << ",\"deserialize_sec\":" << p.deserializeSec
             << ",\"wakeups\":" << p.wakeups << "}";
        first = false;
    }
    json << "]}";
    std::cout << json.str() << "\n";

    // Pipelined-iteration series: barrier vs compute/aggregation
    // overlap (sync, bit-exact) vs bounded-staleness async
    // (maxStaleness = 2), on both fabrics. Overlap removes the
    // per-iteration dispatch barrier, so iterations/sec should grow —
    // most visibly on TCP at 16 nodes, where the aggregation wait is
    // largest. The last line is the machine-readable BENCH_overlap
    // summary CI keeps as an artifact.
    TablePrinter overlap_table(
        "Pipelined iterations (measured, stock @ scale 64): "
        "iterations/sec vs the barrier protocol");
    overlap_table.setHeader({"Nodes", "Backend", "Mode", "iters/sec",
                             "vs barrier"});
    std::vector<OverlapSeriesPoint> opoints;
    for (net::TransportKind kind :
         {net::TransportKind::InProcess, net::TransportKind::Tcp}) {
        for (int nodes : {4, 8, 16}) {
            OverlapSeriesPoint barrier =
                measureOverlap(nodes, kind, false, 0);
            OverlapSeriesPoint sync =
                measureOverlap(nodes, kind, true, 0);
            OverlapSeriesPoint async =
                measureOverlap(nodes, kind, true, 2);
            sync.speedupVsBarrier =
                barrier.itersPerSec > 0.0
                    ? sync.itersPerSec / barrier.itersPerSec
                    : 0.0;
            async.speedupVsBarrier =
                barrier.itersPerSec > 0.0
                    ? async.itersPerSec / barrier.itersPerSec
                    : 0.0;
            opoints.push_back(barrier);
            opoints.push_back(sync);
            opoints.push_back(async);
        }
    }
    for (const auto &p : opoints)
        overlap_table.addRow(
            {std::to_string(p.nodes), p.backend, p.mode,
             TablePrinter::num(p.itersPerSec, 1),
             TablePrinter::num(p.speedupVsBarrier, 2) + "x"});
    overlap_table.print(std::cout);

    std::ostringstream ojson;
    ojson << "{\"bench\":\"overlap\",\"workload\":\"stock\","
          << "\"series\":[";
    first = true;
    for (const auto &p : opoints) {
        ojson << (first ? "" : ",") << "{\"nodes\":" << p.nodes
              << ",\"backend\":\"" << p.backend << "\",\"mode\":\""
              << p.mode << "\",\"iters_per_sec\":" << p.itersPerSec
              << ",\"speedup_vs_barrier\":" << p.speedupVsBarrier
              << "}";
        first = false;
    }
    ojson << "]}";
    std::cout << ojson.str() << "\n";
    return 0;
}
