/**
 * @file
 * Ablation of the two compiler/architecture design choices DESIGN.md
 * calls out: the data-first mapping (Algorithm 1) and the hierarchical
 * interconnect. All four combinations are compiled for the UltraScale+
 * and timed, isolating each choice's contribution (the off-diagonal
 * points between CoSMIC and the TABLA baseline of Fig. 17).
 */
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "compiler/pipeline.h"
#include "ml/workloads.h"

using namespace cosmic;

int
main()
{
    auto platform = accel::PlatformSpec::ultrascalePlus();

    TablePrinter table("Ablation: makespan (cycles/record) of mapping "
                       "strategy x interconnect on UltraScale+ "
                       "(1 thread, 48 rows)");
    table.setHeader({"Benchmark", "data-first + tree",
                     "data-first + flat", "op-first + tree",
                     "op-first + flat", "best/worst"});

    for (const std::string name :
         {"stock", "tumor", "face", "cancer1", "cancer2", "texture"}) {
        const auto &w = ml::Workload::byName(name);

        std::vector<int64_t> makespans;
        for (auto strategy : {compiler::MappingStrategy::DataFirst,
                              compiler::MappingStrategy::OperationFirst})
            for (auto bus : {compiler::BusKind::Hierarchical,
                             compiler::BusKind::SingleShared}) {
                compiler::CompileOptions options;
                options.strategy = strategy;
                options.bus = bus;
                options.forceThreads = 1;
                options.forceRowsPerThread = platform.maxRows;
                compile::Pipeline pipeline(w.dslSource(), platform,
                                           options);
                makespans.push_back(
                    pipeline.mapped().schedule.makespan);
            }

        double worst = static_cast<double>(
            *std::max_element(makespans.begin(), makespans.end()));
        double best = static_cast<double>(
            *std::min_element(makespans.begin(), makespans.end()));
        table.addRow({name, std::to_string(makespans[0]),
                      std::to_string(makespans[1]),
                      std::to_string(makespans[2]),
                      std::to_string(makespans[3]),
                      TablePrinter::num(worst / best, 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nExpected: data-first + tree (CoSMIC) is the "
              << "fastest cell; op-first + flat (TABLA) the slowest.\n";
    return 0;
}
