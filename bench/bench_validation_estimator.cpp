/**
 * @file
 * Validation of the performance-estimation tool (paper Sec. 4.4 says
 * the Planner's estimator was "validated against the hardware"; our
 * hardware stand-in is the functional cycle simulator). For every
 * benchmark the static schedule's makespan is compared with the cycles
 * the simulator observes while actually moving values — they must
 * agree to within the gradient-accumulation tail the estimator
 * reserves on top.
 */
#include <iostream>

#include "accel/replay.h"
#include "accel/simulator.h"
#include "common/rng.h"
#include "common/table.h"
#include "compiler/pipeline.h"
#include "dfg/interp.h"
#include "ml/dataset.h"
#include "ml/workloads.h"

using namespace cosmic;

int
main()
{
    const double scale = 16.0; // simulator moves real values: keep it
                               // laptop-quick while covering all DFGs
    TablePrinter table("Estimator validation: static schedule vs "
                       "simulated execution (scale 1/16)");
    table.setHeader({"Benchmark", "Plan", "Estimated cycles",
                     "Simulated cycles", "Delta %", "Gradient match",
                     "Replay"});

    for (const auto &w : ml::Workload::suite()) {
        auto artifact = compile::buildCached(
            w.dslSource(scale), accel::PlatformSpec::ultrascalePlus());
        const auto &tr = artifact->build.translation;
        const auto &result = artifact->build.planResult;
        const auto &kernel = result.kernel;

        accel::CycleSimulator simulator(tr, kernel);
        dfg::Interpreter interp(tr);
        Rng rng(71);
        auto ds = ml::DatasetGenerator::generate(w, scale, 1, rng);
        auto model = ml::DatasetGenerator::initialModel(w, scale, rng);

        auto sim = simulator.run(ds.record(0), model);
        std::vector<double> golden;
        interp.run(ds.record(0), model, golden);
        bool match = sim.ok && sim.gradient.size() == golden.size();
        for (size_t i = 0; match && i < golden.size(); ++i)
            match = sim.gradient[i] == golden[i];

        auto replay = accel::ScheduleReplayer::replay(tr, kernel);

        double estimated =
            static_cast<double>(kernel.computeCyclesPerRecord);
        double delta =
            100.0 * (estimated - sim.cycles) / estimated;
        table.addRow(
            {w.name,
             "T" + std::to_string(result.plan.threads) + "xR" +
                 std::to_string(result.plan.rowsPerThread),
             std::to_string(kernel.computeCyclesPerRecord),
             std::to_string(sim.cycles), TablePrinter::num(delta, 1),
             match ? "exact" : "MISMATCH",
             replay.valid ? "valid" : replay.violation});
    }
    table.print(std::cout);
    std::cout << "\nDelta is the gradient-accumulation tail the "
              << "estimator reserves beyond the last simulated "
              << "writeback; every gradient must be bit-exact against "
              << "the interpreter.\n";
    return 0;
}
