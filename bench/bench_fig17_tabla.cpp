/**
 * @file
 * Regenerates paper Figure 17: CoSMIC's template architecture versus
 * TABLA's, both generated for the UltraScale+ at the same PE count.
 *
 * Paper reference: CoSMIC is 3.9x faster on average. TABLA's flat bus
 * and operation-first mapping drown in intermediate-result traffic as
 * the PE count grows; CoSMIC's tree bus + data-first mapping keep the
 * compute resources busy.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    auto platform = accel::PlatformSpec::ultrascalePlus();

    TablePrinter table("Figure 17: Speedup of CoSMIC's template over "
                       "TABLA's (same PE count, UltraScale+)");
    table.setHeader({"Benchmark", "CoSMIC rec/s", "TABLA rec/s",
                     "Speedup"});

    std::vector<double> speedups;
    for (const auto &w : ml::Workload::suite()) {
        auto cosmic_summary = bench::buildSummary(w, platform);
        auto tabla_summary = bench::buildTablaSummary(w, platform);
        accel::PerfEstimator cosmic_perf(cosmic_summary.perf);
        accel::PerfEstimator tabla_perf(tabla_summary.perf);
        double c = cosmic_perf.recordsPerSecond();
        double t = tabla_perf.recordsPerSecond();
        speedups.push_back(c / t);
        table.addRow({w.name, TablePrinter::num(c, 0),
                      TablePrinter::num(t, 0),
                      TablePrinter::num(c / t, 2)});
    }
    table.addRow({"geomean", "", "",
                  TablePrinter::num(geomean(speedups), 2)});
    table.print(std::cout);

    std::cout << "\nPaper reference: 3.9x average speedup over TABLA "
              << "on UltraScale+.\n";
    return 0;
}
