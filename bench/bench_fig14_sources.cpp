/**
 * @file
 * Regenerates paper Figure 14: where 3-FPGA-CoSMIC's speedup over
 * 3-node Spark comes from — the FPGAs (computation) versus the
 * specialized system software (aggregation, networking, management).
 *
 * Paper reference: the FPGAs provide 20.7x on the computation part and
 * the specialized system software is 28.4x faster than Spark's, on
 * average; the communication-sensitive benchmarks gain more from the
 * system software.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    const int nodes = 3;
    const int64_t b = bench::kDefaultMinibatch;
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    TablePrinter table("Figure 14: speedup breakdown over 3-node Spark "
                       "(FPGA compute vs system software)");
    table.setHeader({"Benchmark", "FPGA (compute)",
                     "System software", "Overall"});

    std::vector<double> fpga_sp, sys_sp, all_sp;
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        auto cosmic = bench::cosmicEstimate(s, nodes, b, w.numVectors)
                          .iteration;
        // Spark handles the same records per aggregation round.
        auto spark = bench::sparkEstimate(s, nodes,
                                          b * nodes, w.numVectors)
                         .iteration;

        double fpga = spark.computeSec / cosmic.computeSec;
        double cosmic_sys = cosmic.networkSec + cosmic.aggregationSec +
                            cosmic.overheadSec;
        double spark_sys = spark.networkSec + spark.aggregationSec +
                           spark.overheadSec;
        double sys = spark_sys / cosmic_sys;
        double overall = spark.totalSec() / cosmic.totalSec();
        fpga_sp.push_back(fpga);
        sys_sp.push_back(sys);
        all_sp.push_back(overall);
        table.addRow({s.workload, TablePrinter::num(fpga, 1),
                      TablePrinter::num(sys, 1),
                      TablePrinter::num(overall, 1)});
    }
    table.addRow({"geomean", TablePrinter::num(geomean(fpga_sp), 1),
                  TablePrinter::num(geomean(sys_sp), 1),
                  TablePrinter::num(geomean(all_sp), 1)});
    table.print(std::cout);

    std::cout << "\nPaper reference averages: FPGAs 20.7x, system "
              << "software 28.4x.\n";
    return 0;
}
