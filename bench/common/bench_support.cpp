#include "bench_support.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/gpu_model.h"
#include "baselines/spark_model.h"
#include "baselines/tabla_model.h"
#include "common/error.h"
#include "compiler/pipeline.h"

namespace cosmic::bench {

namespace {

/** v5: workloads compile through the pipeline's DFG passes. */
constexpr int kCacheVersion = 5;

bool
cacheEnabled()
{
    const char *env = std::getenv("COSMIC_BENCH_CACHE");
    return env == nullptr || std::string(env) != "0";
}

std::filesystem::path
cachePath(const ml::Workload &w, const accel::PlatformSpec &p,
          double scale)
{
    std::string platform = p.name;
    for (auto &c : platform)
        if (c == ' ' || c == '/' || c == '+')
            c = '_';
    std::ostringstream name;
    name << w.name << "__" << platform << "__s" << scale << ".txt";
    return std::filesystem::path("bench-cache") / name.str();
}

bool
loadSummary(const std::filesystem::path &path, WorkloadSummary &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    int version = 0;
    in >> version;
    if (version != kCacheVersion)
        return false;
    in >> out.workload >> out.platform;
    in >> out.perf.frequencyHz >> out.perf.threads >> out.perf.columns >>
        out.perf.wordsPerCycle >> out.perf.pcieBandwidthBytesPerSec >>
        out.perf.computeCyclesPerRecord >> out.perf.recordWords >>
        out.perf.modelWords >> out.perf.gradientWords;
    in >> out.flopsPerRecord >> out.bytesPerRecord >> out.modelBytes;
    in >> out.threads >> out.rowsPerThread >> out.columns;
    in >> out.usage.luts >> out.usage.flipFlops >> out.usage.bramBytes >>
        out.usage.dspSlices >> out.usage.lutUtil >> out.usage.ffUtil >>
        out.usage.bramUtil >> out.usage.dspUtil;
    return static_cast<bool>(in);
}

void
storeSummary(const std::filesystem::path &path,
             const WorkloadSummary &s)
{
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    std::ofstream out(path);
    if (!out)
        return;
    out.precision(17);
    out << kCacheVersion << "\n";
    out << s.workload << " " << s.platform << "\n";
    out << s.perf.frequencyHz << " " << s.perf.threads << " "
        << s.perf.columns << " " << s.perf.wordsPerCycle << " "
        << s.perf.pcieBandwidthBytesPerSec << " "
        << s.perf.computeCyclesPerRecord << " " << s.perf.recordWords
        << " " << s.perf.modelWords << " " << s.perf.gradientWords
        << "\n";
    out << s.flopsPerRecord << " " << s.bytesPerRecord << " "
        << s.modelBytes << "\n";
    out << s.threads << " " << s.rowsPerThread << " " << s.columns
        << "\n";
    out << s.usage.luts << " " << s.usage.flipFlops << " "
        << s.usage.bramBytes << " " << s.usage.dspSlices << " "
        << s.usage.lutUtil << " " << s.usage.ffUtil << " "
        << s.usage.bramUtil << " " << s.usage.dspUtil << "\n";
}

} // namespace

WorkloadSummary
buildSummary(const ml::Workload &workload,
             const accel::PlatformSpec &platform, double scale)
{
    auto path = cachePath(workload, platform, scale);
    WorkloadSummary summary;
    if (cacheEnabled() && loadSummary(path, summary) &&
        summary.workload == workload.name)
        return summary;

    std::fprintf(stderr, "[bench] building %s on %s ...\n",
                 workload.name.c_str(), platform.name.c_str());
    auto built = core::CosmicStack::buildWorkload(workload, scale,
                                                  platform);
    accel::PerfEstimator perf(built.translation,
                              built.planResult.kernel,
                              built.planResult.plan);
    summary.workload = workload.name;
    summary.platform = platform.name;
    summary.perf = perf.params();
    summary.flopsPerRecord = built.flopsPerRecord;
    summary.bytesPerRecord = built.bytesPerRecord;
    summary.modelBytes = built.modelBytes;
    summary.threads = built.planResult.plan.threads;
    summary.rowsPerThread = built.planResult.plan.rowsPerThread;
    summary.columns = built.planResult.plan.columns;
    summary.usage = built.planResult.plan.resourceUsage();

    if (cacheEnabled())
        storeSummary(path, summary);
    return summary;
}

WorkloadSummary
buildTablaSummary(const ml::Workload &workload,
                  const accel::PlatformSpec &platform, double scale)
{
    accel::PlatformSpec tagged = platform;
    tagged.name = platform.name + " TABLA";
    auto path = cachePath(workload, tagged, scale);
    WorkloadSummary summary;
    if (cacheEnabled() && loadSummary(path, summary) &&
        summary.workload == workload.name)
        return summary;

    std::fprintf(stderr, "[bench] building %s on %s (TABLA) ...\n",
                 workload.name.c_str(), platform.name.c_str());
    auto frontend = compile::translateCached(workload.dslSource(scale));
    const auto &tr = frontend->translation;
    auto tabla = baselines::TablaModel::build(tr, platform);

    accel::PerfEstimator perf(tr, tabla.kernel, tabla.plan);
    summary.workload = workload.name;
    summary.platform = tagged.name;
    summary.perf = perf.params();
    summary.flopsPerRecord = static_cast<double>(
        tr.dfg.operationCount() + tr.gradientWords);
    summary.bytesPerRecord = 4.0 * tr.recordWords;
    summary.modelBytes = 4 * tr.modelWords;
    summary.threads = tabla.plan.threads;
    summary.rowsPerThread = tabla.plan.rowsPerThread;
    summary.columns = tabla.plan.columns;
    summary.usage = tabla.plan.resourceUsage();

    if (cacheEnabled())
        storeSummary(path, summary);
    return summary;
}

std::vector<WorkloadSummary>
buildSuite(const accel::PlatformSpec &platform, double scale)
{
    std::vector<WorkloadSummary> summaries;
    for (const auto &w : ml::Workload::suite())
        summaries.push_back(buildSummary(w, platform, scale));
    return summaries;
}

double
nodeBatchSeconds(const WorkloadSummary &summary, int64_t records)
{
    accel::PerfEstimator perf(summary.perf);
    return perf.batchTime(records).totalSec();
}

core::ScaleOutEstimate
cosmicEstimate(const WorkloadSummary &summary, int nodes,
               int64_t minibatch, int64_t total_records, int groups)
{
    // CoSMIC's mini-batch b is the local data each node processes
    // before an aggregation round (Eq. 3a): per node, not global.
    core::ScaleOutConfig cfg;
    cfg.nodes = nodes;
    cfg.groups = groups;
    cfg.minibatchPerNode = minibatch;
    return core::ScaleOutEstimator::withNodeTime(
        nodeBatchSeconds(summary, minibatch), summary.modelBytes, cfg,
        total_records);
}

core::ScaleOutEstimate
sparkEstimate(const WorkloadSummary &summary, int nodes,
              int64_t global_minibatch, int64_t total_records)
{
    // Spark MLlib's mini-batch is a fraction of the global dataset, so
    // the batch stays global and each executor sees a 1/N slice.
    int64_t per_node = std::max<int64_t>(1, global_minibatch / nodes);
    const auto &w = ml::Workload::byName(summary.workload);
    baselines::SparkModel spark;
    auto it = spark.iteration(w.algorithm, nodes, per_node,
                              summary.flopsPerRecord,
                              summary.bytesPerRecord,
                              summary.modelBytes);
    core::ScaleOutEstimate est;
    est.iteration = it;
    est.iterationsPerEpoch = static_cast<double>(total_records) /
                             static_cast<double>(global_minibatch);
    est.epochSeconds = est.iterationsPerEpoch * it.totalSec();
    est.recordsPerSecond =
        static_cast<double>(global_minibatch) / it.totalSec();
    return est;
}

core::ScaleOutEstimate
gpuEstimate(const WorkloadSummary &summary, const ml::Workload &workload,
            int nodes, int64_t minibatch, int64_t total_records)
{
    // The GPU nodes run under CoSMIC's runtime: per-node b (Eq. 3a).
    int64_t per_node = minibatch;
    baselines::GpuNodeModel gpu;
    double dataset_bytes_per_node =
        workload.dataGB * 1e9 / nodes;
    double node_batch = gpu.batchSeconds(
        workload.algorithm, per_node, summary.flopsPerRecord,
        summary.bytesPerRecord, summary.modelBytes,
        dataset_bytes_per_node);

    core::ScaleOutConfig cfg;
    cfg.nodes = nodes;
    cfg.minibatchPerNode = per_node;
    return core::ScaleOutEstimator::withNodeTime(
        node_batch, summary.modelBytes, cfg, total_records);
}


sys::ClusterConfig
smallCluster(int nodes, int64_t minibatch_per_node,
             int64_t records_per_node, int groups)
{
    sys::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.groups = groups;
    cfg.minibatchPerNode = minibatch_per_node;
    cfg.recordsPerNode = records_per_node;
    return cfg;
}

std::unique_ptr<sys::ClusterRuntime>
makeRuntime(const std::string &workload, double scale,
            const sys::ClusterConfig &cfg)
{
    return std::make_unique<sys::ClusterRuntime>(
        ml::Workload::byName(workload), scale, cfg);
}

sys::TrainingReport
trainMeasured(const std::string &workload, double scale,
              const sys::ClusterConfig &cfg, int epochs)
{
    return makeRuntime(workload, scale, cfg)->train(epochs);
}

} // namespace cosmic::bench
