/**
 * @file
 * Shared support for the evaluation harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * They all need the same expensive artifact — the planned + compiled
 * accelerator for each (benchmark, platform) pair — so this support
 * library runs the full stack once and caches the resulting timing
 * summary (a dozen numbers) in ./bench-cache/. Re-runs of the harness
 * then take seconds. Delete the directory (or set COSMIC_BENCH_CACHE=0)
 * to force a full rebuild.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/perf.h"
#include "accel/platform.h"
#include "core/cosmic.h"
#include "ml/workloads.h"
#include "system/cluster_runtime.h"

namespace cosmic::bench {

/** Cached result of building one benchmark for one platform. */
struct WorkloadSummary
{
    std::string workload;
    std::string platform;

    accel::PerfParams perf;
    double flopsPerRecord = 0.0;
    double bytesPerRecord = 0.0;
    int64_t modelBytes = 0;

    int threads = 0;
    int rowsPerThread = 0;
    int columns = 0;

    accel::ResourceUsage usage;
};

/** Builds (or loads) the summary for one benchmark on one platform. */
WorkloadSummary buildSummary(const ml::Workload &workload,
                             const accel::PlatformSpec &platform,
                             double scale = 1.0);

/** Summaries for the whole Table 1 suite on one platform. */
std::vector<WorkloadSummary>
buildSuite(const accel::PlatformSpec &platform, double scale = 1.0);

/**
 * Builds (or loads) the TABLA-baseline summary: single thread over the
 * whole fabric, operation-first mapping, flat shared bus (Fig. 17).
 */
WorkloadSummary buildTablaSummary(const ml::Workload &workload,
                                  const accel::PlatformSpec &platform,
                                  double scale = 1.0);

/** Per-node accelerator time for a mini-batch of @p records. */
double nodeBatchSeconds(const WorkloadSummary &summary, int64_t records);

/** CoSMIC cluster estimate from a cached summary. */
core::ScaleOutEstimate
cosmicEstimate(const WorkloadSummary &summary, int nodes,
               int64_t minibatch_per_node, int64_t total_records,
               int groups = 0);

/** Spark baseline estimate for the same deployment. */
core::ScaleOutEstimate
sparkEstimate(const WorkloadSummary &summary, int nodes,
              int64_t minibatch_per_node, int64_t total_records);

/** GPU-accelerated CoSMIC estimate (Sec. 7.1's 3-GPU system). */
core::ScaleOutEstimate
gpuEstimate(const WorkloadSummary &summary, const ml::Workload &workload,
            int nodes, int64_t minibatch_per_node, int64_t total_records);

/** The paper's default mini-batch size. */
constexpr int64_t kDefaultMinibatch = 10000;

/**
 * The scaled-down cluster shape every measured (functional-runtime)
 * bench uses: @p nodes nodes, one aggregation tier unless @p groups
 * says otherwise, small per-node batch/record counts so a run takes
 * milliseconds on the host CPU.
 */
sys::ClusterConfig smallCluster(int nodes, int64_t minibatch_per_node,
                                int64_t records_per_node,
                                int groups = 0);

/** A functional runtime for @p workload (a Table 1 name) at
 *  1/@p scale dimensions under @p cfg. */
std::unique_ptr<sys::ClusterRuntime>
makeRuntime(const std::string &workload, double scale,
            const sys::ClusterConfig &cfg);

/** makeRuntime + train in one call — the common measured-bench body. */
sys::TrainingReport trainMeasured(const std::string &workload,
                                  double scale,
                                  const sys::ClusterConfig &cfg,
                                  int epochs);

} // namespace cosmic::bench
