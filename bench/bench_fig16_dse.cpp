/**
 * @file
 * Regenerates paper Figure 16: the Planner's design-space exploration —
 * performance of every (threads x rows-per-thread) allocation on the
 * VU9P, normalized to T1xR1, for four representative benchmarks.
 *
 * Paper reference: mnist and movielens peak using all 48 rows
 * (compute-bound); stock and tumor saturate beyond 16 rows; for a
 * fixed row count, more threads always help — the case for the
 * multi-threaded template.
 */
#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.h"
#include "compiler/pipeline.h"
#include "ml/workloads.h"

using namespace cosmic;

int
main()
{
    auto platform = accel::PlatformSpec::ultrascalePlus();
    for (const std::string name :
         {"mnist", "movielens", "stock", "tumor"}) {
        const auto &w = ml::Workload::byName(name);
        // Full exploration: no large-DFG pruning for this figure.
        compiler::CompileOptions options;
        options.pruneSmallRows = false;
        compile::Pipeline pipeline(w.dslSource(), platform, options);
        const auto &result = pipeline.planned();

        // Baseline: the T1xR1 point.
        double base = 0.0;
        for (const auto &p : result.explored)
            if (p.threads == 1 && p.rowsPerThread == 1)
                base = p.recordsPerSecond;

        std::map<int, std::map<int, double>> grid; // rows -> threads
        std::vector<int> thread_axis;
        for (const auto &p : result.explored) {
            grid[p.rowsPerThread][p.threads] = p.recordsPerSecond;
            if (std::find(thread_axis.begin(), thread_axis.end(),
                          p.threads) == thread_axis.end())
                thread_axis.push_back(p.threads);
        }
        std::sort(thread_axis.begin(), thread_axis.end());

        TablePrinter table("Figure 16: DSE for " + name +
                           " (speedup over T1xR1; rows x threads; "
                           "t_max=" +
                           std::to_string(result.maxThreadsBound) + ")");
        std::vector<std::string> header = {"Rows/Thread"};
        for (int t : thread_axis)
            header.push_back("T" + std::to_string(t));
        table.setHeader(header);

        for (const auto &[rows, by_threads] : grid) {
            std::vector<std::string> row = {"R" + std::to_string(rows)};
            for (int t : thread_axis) {
                auto it = by_threads.find(t);
                row.push_back(it == by_threads.end()
                                  ? "-"
                                  : TablePrinter::num(
                                        it->second / base, 2));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        const auto &chosen = result.explored[result.chosenIndex];
        std::cout << "Chosen point: T" << chosen.threads << "xR"
                  << chosen.rowsPerThread << "\n";
    }
    std::cout << "\nPaper reference: mnist/movielens best at 48 rows "
              << "total; stock/tumor saturate past 16 rows; more "
              << "threads at fixed rows always help.\n";
    return 0;
}
