/**
 * @file
 * Regenerates paper Figure 16: the Planner's design-space exploration —
 * performance of every (threads x rows-per-thread) allocation on the
 * VU9P, normalized to T1xR1, for four representative benchmarks — and
 * extends it with the elastic-execution axis: at each benchmark's
 * chosen point, static scheduling is swept against elastic (dataflow-
 * fired) execution with uniform FIFO capacities k in {1, 2, 4} and
 * against the buffer optimizer's fitted placement.
 *
 * Paper reference: mnist and movielens peak using all 48 rows
 * (compute-bound); stock and tumor saturate beyond 16 rows; for a
 * fixed row count, more threads always help — the case for the
 * multi-threaded template.
 *
 * Flags:
 *   --quick      two benchmarks at 1/64 scale (CI-sized)
 *   --scale <s>  explicit scale divisor for the elastic sweep
 *
 * The last stdout line is machine-readable:
 *   {"bench":"dse", ...}   (CI greps it into BENCH_dse.json)
 */
#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "accel/buffer_opt.h"
#include "accel/elastic.h"
#include "common/table.h"
#include "compiler/pipeline.h"
#include "ml/workloads.h"

using namespace cosmic;

namespace {

/** Elastic cycles/record and utilization for one FIFO configuration. */
struct SweepPoint
{
    std::string label;
    bool ok = false;
    int64_t cyclesPerRecord = 0;
    double utilization = 0.0;
    int64_t bufferBytes = 0;
};

SweepPoint
runElastic(const std::string &label, const dfg::Translation &tr,
           const compiler::CompiledKernel &kernel,
           const accel::ElasticConfig &config, int records)
{
    SweepPoint point;
    point.label = label;
    accel::ElasticSimulator sim(tr, kernel, config);
    // Timing is value-independent, so a zero batch measures what real
    // records would.
    std::vector<double> data(
        static_cast<size_t>(records) * tr.recordWords, 0.0);
    std::vector<double> model(
        static_cast<size_t>(std::max<int64_t>(tr.modelWords, 1)), 0.0);
    auto result = sim.runBatch(data, records, model);
    point.ok = result.ok;
    if (result.ok) {
        point.cyclesPerRecord =
            (result.stats.cycles + records - 1) / records;
        point.utilization = result.stats.utilization;
        for (const auto &link : result.stats.links)
            point.bufferBytes += 4LL * link.capacity;
    }
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    double scale = 1.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--scale" && i + 1 < argc)
            scale = std::stod(argv[++i]);
    }
    if (quick && scale == 1.0)
        scale = 64.0;

    const int kElasticRecords = 6;
    std::vector<std::string> names = {"mnist", "movielens", "stock",
                                      "tumor"};
    if (quick)
        names = {"stock", "tumor"};

    auto platform = accel::PlatformSpec::ultrascalePlus();
    std::ostringstream json;
    json << "{\"bench\":\"dse\",\"scale\":" << scale
         << ",\"workloads\":[";
    bool first_workload = true;

    for (const std::string &name : names) {
        const auto &w = ml::Workload::byName(name);
        // Full exploration: no large-DFG pruning for this figure.
        compiler::CompileOptions options;
        options.pruneSmallRows = false;
        compile::Pipeline pipeline(w.dslSource(scale), platform,
                                   options);
        const auto &result = pipeline.planned();
        const auto &tr = pipeline.optimized();

        // Baseline: the T1xR1 point.
        double base = 0.0;
        for (const auto &p : result.explored)
            if (p.threads == 1 && p.rowsPerThread == 1)
                base = p.recordsPerSecond;

        std::map<int, std::map<int, double>> grid; // rows -> threads
        std::vector<int> thread_axis;
        for (const auto &p : result.explored) {
            grid[p.rowsPerThread][p.threads] = p.recordsPerSecond;
            if (std::find(thread_axis.begin(), thread_axis.end(),
                          p.threads) == thread_axis.end())
                thread_axis.push_back(p.threads);
        }
        std::sort(thread_axis.begin(), thread_axis.end());

        TablePrinter table("Figure 16: DSE for " + name +
                           " (speedup over T1xR1; rows x threads; "
                           "t_max=" +
                           std::to_string(result.maxThreadsBound) + ")");
        std::vector<std::string> header = {"Rows/Thread"};
        for (int t : thread_axis)
            header.push_back("T" + std::to_string(t));
        table.setHeader(header);

        for (const auto &[rows, by_threads] : grid) {
            std::vector<std::string> row = {"R" + std::to_string(rows)};
            for (int t : thread_axis) {
                auto it = by_threads.find(t);
                row.push_back(it == by_threads.end()
                                  ? "-"
                                  : TablePrinter::num(
                                        it->second / base, 2));
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        const auto &chosen = result.explored[result.chosenIndex];
        std::cout << "Chosen point: T" << chosen.threads << "xR"
                  << chosen.rowsPerThread << "\n";

        // --- Elastic sweep at the chosen point ---
        const auto &kernel = result.kernel;
        const auto &plan = result.plan;
        const int64_t static_cycles = kernel.computeCyclesPerRecord;
        const double static_util =
            static_cast<double>(kernel.opCount) /
            (static_cast<double>(plan.pesPerThread()) * static_cycles);

        std::vector<SweepPoint> sweep;
        for (int k : {1, 2, 4}) {
            accel::ElasticConfig config;
            config.defaultCapacity = k;
            sweep.push_back(runElastic("elastic k=" + std::to_string(k),
                                       tr, kernel, config,
                                       kElasticRecords));
        }
        auto placement = accel::BufferOptimizer::optimize(
            tr, kernel, plan, kElasticRecords);
        SweepPoint optimized;
        optimized.label = "elastic opt";
        optimized.ok = true;
        optimized.cyclesPerRecord = placement.cyclesPerRecord;
        optimized.utilization = placement.utilization;
        optimized.bufferBytes = placement.bufferBytesPerThread;
        sweep.push_back(optimized);

        TablePrinter etable("Static vs elastic at T" +
                            std::to_string(chosen.threads) + "xR" +
                            std::to_string(chosen.rowsPerThread) +
                            " (one thread, " +
                            std::to_string(kElasticRecords) +
                            " records in stream)");
        etable.setHeader({"Config", "Cycles/Record", "Speedup",
                          "PE Util %", "FIFO Bytes"});
        etable.addRow({"static", std::to_string(static_cycles), "1.00",
                       TablePrinter::num(100.0 * static_util, 1), "0"});
        for (const auto &p : sweep) {
            if (!p.ok) {
                etable.addRow({p.label, "deadlock", "-", "-", "-"});
                continue;
            }
            etable.addRow(
                {p.label, std::to_string(p.cyclesPerRecord),
                 TablePrinter::num(static_cast<double>(static_cycles) /
                                       p.cyclesPerRecord,
                                   2),
                 TablePrinter::num(100.0 * p.utilization, 1),
                 std::to_string(p.bufferBytes)});
        }
        etable.print(std::cout);
        std::cout << "Buffer budget: " << placement.bufferBytesPerThread
                  << " / " << placement.budgetBytesPerThread
                  << " bytes per thread ("
                  << (placement.withinBudget ? "fits" : "over budget")
                  << ")\n";

        if (!first_workload)
            json << ",";
        first_workload = false;
        json << "{\"name\":\"" << name << "\",\"threads\":"
             << chosen.threads << ",\"rows\":" << chosen.rowsPerThread
             << ",\"static_cycles\":" << static_cycles
             << ",\"static_util\":" << static_util << ",\"sweep\":[";
        for (size_t i = 0; i < sweep.size(); ++i) {
            if (i)
                json << ",";
            json << "{\"config\":\"" << sweep[i].label
                 << "\",\"ok\":" << (sweep[i].ok ? "true" : "false")
                 << ",\"cycles\":" << sweep[i].cyclesPerRecord
                 << ",\"util\":" << sweep[i].utilization
                 << ",\"buffer_bytes\":" << sweep[i].bufferBytes << "}";
        }
        json << "],\"budget_bytes\":" << placement.budgetBytesPerThread
             << ",\"within_budget\":"
             << (placement.withinBudget ? "true" : "false") << "}";
    }

    std::cout << "\nPaper reference: mnist/movielens best at 48 rows "
              << "total; stock/tumor saturate past 16 rows; more "
              << "threads at fixed rows always help.\n";
    json << "]}";
    std::cout << json.str() << "\n";
    return 0;
}
