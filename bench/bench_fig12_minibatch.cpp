/**
 * @file
 * Regenerates paper Figure 12: performance of 3-FPGA-CoSMIC (a) and
 * 3-node Spark (b) as the mini-batch size sweeps from 500 to 100,000;
 * baseline is 3-node Spark at the default b = 10,000.
 *
 * Paper reference: CoSMIC is faster across all combinations; 16.8x at
 * b=500 shrinking to 9.1x at b=100,000 as Spark's overheads amortize.
 */
#include <iostream>
#include <vector>

#include "bench_support.h"
#include "common/stats.h"
#include "common/table.h"

using namespace cosmic;

int
main()
{
    const int nodes = 3;
    const std::vector<int64_t> batches = {500, 2000, 10000, 40000,
                                          100000};
    auto suite = bench::buildSuite(accel::PlatformSpec::ultrascalePlus());

    auto run = [&](bool cosmic) {
        TablePrinter table(
            std::string("Figure 12") + (cosmic ? "(a): 3-FPGA-CoSMIC"
                                               : "(b): 3-node Spark") +
            " performance vs mini-batch size (baseline: 3-node Spark "
            "at b=10000)");
        std::vector<std::string> header = {"Benchmark"};
        for (int64_t b : batches)
            header.push_back("b=" + std::to_string(b));
        table.setHeader(header);

        std::vector<std::vector<double>> cols(batches.size());
        for (const auto &s : suite) {
            const auto &w = ml::Workload::byName(s.workload);
            double base =
                bench::sparkEstimate(s, nodes, 10000, w.numVectors)
                    .recordsPerSecond;
            std::vector<std::string> row = {s.workload};
            for (size_t i = 0; i < batches.size(); ++i) {
                double rps =
                    cosmic ? bench::cosmicEstimate(s, nodes, batches[i],
                                                   w.numVectors)
                                 .recordsPerSecond
                           : bench::sparkEstimate(s, nodes, batches[i],
                                                  w.numVectors)
                                 .recordsPerSecond;
                cols[i].push_back(rps / base);
                row.push_back(TablePrinter::num(rps / base, 2));
            }
            table.addRow(std::move(row));
        }
        std::vector<std::string> gmean = {"geomean"};
        for (const auto &col : cols)
            gmean.push_back(TablePrinter::num(geomean(col), 2));
        table.addRow(std::move(gmean));
        table.print(std::cout);
    };

    run(true);
    run(false);

    // The paper's summary statistic: CoSMIC over Spark at equal b.
    std::vector<double> at_500, at_100k;
    for (const auto &s : suite) {
        const auto &w = ml::Workload::byName(s.workload);
        at_500.push_back(
            bench::cosmicEstimate(s, nodes, 500, w.numVectors)
                .recordsPerSecond /
            bench::sparkEstimate(s, nodes, 500, w.numVectors)
                .recordsPerSecond);
        at_100k.push_back(
            bench::cosmicEstimate(s, nodes, 100000, w.numVectors)
                .recordsPerSecond /
            bench::sparkEstimate(s, nodes, 100000, w.numVectors)
                .recordsPerSecond);
    }
    std::cout << "\nCoSMIC over Spark at b=500: geomean "
              << TablePrinter::num(geomean(at_500), 1)
              << "x (paper 16.8x); at b=100000: "
              << TablePrinter::num(geomean(at_100k), 1)
              << "x (paper 9.1x).\n";
    return 0;
}
